//! Coarse search: rank records by index evidence of a local alignment.
//!
//! Every interval of the query is looked up in the inverted index; each
//! posting contributes a *hit* `(record, diagonal)`, where the diagonal is
//! the record offset minus the query position. Records are then scored by
//! one of three schemes (ablated in experiment **E8**):
//!
//! * [`RankingScheme::Count`] — raw hit count. Cheap, but long records
//!   accumulate accidental hits.
//! * [`RankingScheme::Proportional`] — hit count normalised by record
//!   length, correcting the length bias.
//! * [`RankingScheme::Frame`] — the paper family's key insight: hits that
//!   belong to a real local alignment share (nearly) one diagonal, so the
//!   score is the maximum number of hits within a diagonal window whose
//!   width tolerates small indels. Accidental hits scatter across
//!   diagonals and stop mattering.
//!
//! The winning diagonal is reported with each candidate, seeding the
//! banded alignment of fine search.

use nucdb_index::{
    CompressedIndex, FetchStats, Granularity, IndexError, IndexParams, OnDiskIndex, PostingsList,
    PostingsVisitor,
};
use nucdb_seq::Base;

use crate::explain::{CoarseExplain, ListExplain, SurvivorExplain};
use crate::params::SearchParams;

/// Records per skip-scan group: the hopeless-block probe tracks one
/// running count maximum per `GROUP_LEN` records instead of re-reading
/// per-record counters.
const GROUP_SHIFT: u32 = 6;
/// `1 << GROUP_SHIFT`.
const GROUP_LEN: usize = 1 << GROUP_SHIFT;
/// Widest record range (in groups) a skip probe will scan; a block
/// covering more records than this is simply decoded — scanning would
/// cost more than the decode it saves.
const MAX_SKIP_SCAN_GROUPS: usize = 64;

/// Anything coarse search can fetch postings from (in-memory index,
/// on-disk index, or the engine's variant wrapper).
///
/// The streaming methods (`fetch_with`, `fetch_counts_with`) are what the
/// hot path calls: they drive a visitor per posting instead of
/// materialising nested lists, reusing `io_buf` for the raw list bytes.
/// Their default impls are backed by the materialising methods, so
/// third-party sources keep compiling (and working) unchanged.
pub trait PostingsSource {
    /// Number of records the index covers.
    fn num_records(&self) -> u32;
    /// Per-record lengths (needed for proportional ranking and offset
    /// decoding).
    fn record_lens(&self) -> &[u32];
    /// The index parameters (interval length, stride, stopping,
    /// granularity).
    fn index_params(&self) -> &IndexParams;
    /// Fetch the postings list for an interval code (offset granularity
    /// only).
    fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError>;
    /// Fetch `(record, count)` pairs for an interval code (either
    /// granularity).
    fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError>;

    /// Streaming fetch: call `visit(record, offset)` for every posting of
    /// `code`, in record order with offsets ascending per record, reusing
    /// `io_buf` as the raw-bytes scratch. Returns the list's `df`
    /// (`Ok(None)` if the interval is absent).
    fn fetch_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        let _ = io_buf;
        match self.fetch(code)? {
            None => Ok(None),
            Some(list) => {
                let df = list.df() as u32;
                for posting in &list.entries {
                    for &offset in &posting.offsets {
                        visit(posting.record, offset);
                    }
                }
                Ok(Some(df))
            }
        }
    }

    /// Streaming counts fetch: call `visit(record, count)` per entry of
    /// `code`'s list (either granularity). Returns the list's `df`
    /// (`Ok(None)` if the interval is absent).
    fn fetch_counts_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        let _ = io_buf;
        match self.fetch_counts(code)? {
            None => Ok(None),
            Some(counts) => {
                let df = counts.len() as u32;
                for (record, count) in counts {
                    visit(record, count);
                }
                Ok(Some(df))
            }
        }
    }

    /// The largest per-record offset count in `code`'s list, when the
    /// source stores that hint (block-codec indexes do). `None` means
    /// "no hint available" and disables hopeless-block skipping for the
    /// whole query; an absent code reports `Some(0)`.
    fn list_max_count(&self, code: u64) -> Option<u32> {
        let _ = code;
        None
    }

    /// Visitor-driven fetch with work accounting: like [`fetch_with`],
    /// but the visitor may also veto whole blocks via
    /// [`PostingsVisitor::skip_block`], and the return carries
    /// [`FetchStats`] (bytes read, ids decoded, blocks decoded/skipped)
    /// instead of a bare `df`. The default wraps [`fetch_with`]: no
    /// skipping, plain stats.
    ///
    /// [`fetch_with`]: PostingsSource::fetch_with
    fn fetch_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        Ok(self
            .fetch_with(code, io_buf, &mut |record, offset| {
                visitor.visit(record, offset)
            })?
            .map(FetchStats::plain))
    }

    /// Counts-mode companion of [`fetch_stream`]: `visit(record, count)`
    /// per entry, with the same skip hook and stats.
    ///
    /// [`fetch_stream`]: PostingsSource::fetch_stream
    fn fetch_counts_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        Ok(self
            .fetch_counts_with(code, io_buf, &mut |record, count| {
                visitor.visit(record, count)
            })?
            .map(FetchStats::plain))
    }
}

/// Implement the forwarding boilerplate of [`PostingsSource`] for a
/// concrete index type; the caller supplies only the two streaming
/// methods (which differ in whether the type wants the I/O buffer).
macro_rules! forward_postings_source {
    ($ty:ty { $($streaming:item)* }) => {
        impl PostingsSource for $ty {
            fn num_records(&self) -> u32 {
                <$ty>::num_records(self)
            }

            fn record_lens(&self) -> &[u32] {
                <$ty>::record_lens(self)
            }

            fn index_params(&self) -> &IndexParams {
                self.params()
            }

            fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
                self.postings(code)
            }

            fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
                self.counts(code)
            }

            $($streaming)*
        }
    };
}

forward_postings_source!(CompressedIndex {
    fn fetch_with(
        &self,
        code: u64,
        _io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.postings_with(code, visit)
    }

    fn fetch_counts_with(
        &self,
        code: u64,
        _io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.counts_with(code, visit)
    }

    fn list_max_count(&self, code: u64) -> Option<u32> {
        CompressedIndex::list_max_count(self, code)
    }

    fn fetch_stream(
        &self,
        code: u64,
        _io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        self.postings_stream(code, visitor)
    }

    fn fetch_counts_stream(
        &self,
        code: u64,
        _io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        self.counts_stream(code, visitor)
    }
});

forward_postings_source!(OnDiskIndex {
    fn fetch_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.postings_with(code, io_buf, visit)
    }

    fn fetch_counts_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.counts_with(code, io_buf, visit)
    }

    fn list_max_count(&self, code: u64) -> Option<u32> {
        OnDiskIndex::list_max_count(self, code)
    }

    fn fetch_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        self.postings_stream(code, io_buf, visitor)
    }

    fn fetch_counts_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        self.counts_stream(code, io_buf, visitor)
    }
});

/// Coarse ranking scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankingScheme {
    /// Total interval hits.
    Count,
    /// Hits divided by record length.
    Proportional,
    /// Most hits within any diagonal window of the given width (in
    /// bases); the window tolerates indels of up to that many bases
    /// inside one local alignment.
    Frame {
        /// Diagonal window width.
        window: u32,
    },
}

impl Default for RankingScheme {
    fn default() -> RankingScheme {
        RankingScheme::Frame { window: 16 }
    }
}

/// One coarse candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseHit {
    /// Record id.
    pub record: u32,
    /// Score under the chosen ranking scheme (higher is better).
    pub score: f64,
    /// Total interval hits for the record.
    pub hits: u32,
    /// Hits within the best diagonal window.
    pub frame_hits: u32,
    /// Centre of the best diagonal window (record offset − query
    /// position); seeds the fine-search band.
    pub best_diagonal: i64,
}

/// The result of coarse search, with the cost counters experiments report.
#[derive(Debug, Clone, Default)]
pub struct CoarseOutcome {
    /// Top candidates, descending score.
    pub candidates: Vec<CoarseHit>,
    /// Distinct query intervals looked up.
    pub intervals_looked_up: u64,
    /// Lists found in the index.
    pub lists_fetched: u64,
    /// Postings entries decoded across all fetched lists. With the block
    /// codec, entries inside skipped blocks are *not* counted here.
    pub postings_decoded: u64,
    /// Compressed postings bytes read (block codec: the whole stored
    /// list including its skip table — skipping saves decode work, not
    /// I/O; other codecs: the encoded list).
    pub postings_bytes_read: u64,
    /// Blocks whose payload was unpacked (block-codec lists only; zero
    /// for the bit-serial codecs, which have no blocks).
    pub blocks_decoded: u64,
    /// Blocks proven hopeless and skipped without decoding.
    pub blocks_skipped: u64,
    /// Total `(query position, record offset)` hit pairs accumulated.
    pub total_hits: u64,
    /// Nanoseconds extracting and sorting the query's interval codes.
    pub extract_nanos: u64,
    /// Nanoseconds fetching postings and accumulating hits.
    pub accumulate_nanos: u64,
    /// Nanoseconds scattering diagonals, scoring and ranking candidates.
    pub rank_nanos: u64,
}

/// Reusable working memory for coarse search.
///
/// A fresh query costs zero allocation once a scratch has warmed up: the
/// per-record accumulators are *generation-stamped* (a record's counter is
/// valid only when its stamp equals the current generation, so starting a
/// query is a single integer increment instead of an `O(num_records)`
/// zeroing), hits land in a reusable arena, and per-record diagonal
/// buckets are placed by counting sort over the already-known per-record
/// hit counts — so only records that pass `min_coarse_hits` ever have
/// their diagonals sorted, replacing the old global sort of every hit.
///
/// One scratch serves any number of sequential queries (and both strands
/// of each); results are identical whether a scratch is fresh or reused.
/// Scratches are not `Sync` — give each worker thread its own.
#[derive(Debug, Default)]
pub struct CoarseScratch {
    /// Current query generation; `stamp[r] == generation` marks record
    /// `r`'s entries in `counts`/`slot` as live.
    generation: u32,
    stamp: Vec<u32>,
    /// Per-record accumulated hit count (valid under the stamp).
    counts: Vec<u32>,
    /// Per-record index into `touched` (valid under the stamp).
    slot: Vec<u32>,
    /// Records hit this query, in first-touch order.
    touched: Vec<u32>,
    /// Hit arena: `(record, diagonal)` in arrival order.
    hits: Vec<(u32, i64)>,
    /// Diagonal buckets, grouped per touched record by counting sort.
    diagonals: Vec<i64>,
    /// Per-touched-record scatter cursors (prefix sums, then bucket ends).
    cursor: Vec<u32>,
    /// The query's `(interval code, query position)` pairs, sorted — runs
    /// of one code replace the old per-query hash map.
    codes: Vec<(u64, u32)>,
    /// Raw postings bytes for the on-disk index's positional reads.
    io_buf: Vec<u8>,
    /// Candidate build area (sorted and truncated before copy-out).
    candidates: Vec<CoarseHit>,
    /// Running per-group count maxima for the hopeless-block probe
    /// (one entry per [`GROUP_LEN`] records; lazily cleared via
    /// `touched`, so it is only trustworthy right after [`begin`]).
    ///
    /// [`begin`]: CoarseScratch::begin
    group_max: Vec<u32>,
    /// Per-code-run suffix potentials for the skip plan:
    /// `run_suffix[j]` bounds how much runs `j..` can still add to any
    /// record's count.
    run_suffix: Vec<u64>,
}

impl CoarseScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> CoarseScratch {
        CoarseScratch::default()
    }

    /// Start a query over `num_records` records: bump the generation and
    /// clear the per-query arenas. O(1) amortised — the stamp table is
    /// only rebuilt when the index size changes or the generation wraps.
    fn begin(&mut self, num_records: usize) {
        if self.stamp.len() != num_records {
            self.stamp.clear();
            self.stamp.resize(num_records, 0);
            self.counts.clear();
            self.counts.resize(num_records, 0);
            self.slot.clear();
            self.slot.resize(num_records, 0);
            self.generation = 0;
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        // Lazily reset the skip probe's group maxima: only groups
        // holding a record the *previous* query touched can be nonzero,
        // and with skipping active the accumulator limit is off, so
        // every counted record is in `touched`.
        if !self.group_max.is_empty() {
            for &record in &self.touched {
                if let Some(g) = self.group_max.get_mut(record as usize >> GROUP_SHIFT) {
                    *g = 0;
                }
            }
        }
        self.generation += 1;
        self.touched.clear();
        self.hits.clear();
    }
}

/// Decide whether hopeless-block skipping can run for this query, and
/// if so fill `run_suffix[j]` with the (saturating) upper bound on what
/// code runs `j..` can still add to any single record's count. Each
/// run's potential is `qlen_j × max_count_j` — on the offsets path a
/// record gains `qlen` per offset (at most `max_count` offsets), and on
/// the counts path it gains `count × qlen ≤ max_count × qlen` at once,
/// so the same bound covers both.
///
/// Returns `false` — plan inactive — when the floor is zero, any run's
/// list lacks a max-count hint, or even a record first touched by the
/// *last* run could still reach the floor (then no τ is ever positive).
fn build_skip_plan<S: PostingsSource + ?Sized>(
    index: &S,
    codes: &[(u64, u32)],
    floor: u64,
    run_suffix: &mut Vec<u64>,
) -> bool {
    run_suffix.clear();
    if floor == 0 {
        return false;
    }
    let mut run_start = 0usize;
    while run_start < codes.len() {
        let code = codes[run_start].0;
        let mut run_end = run_start;
        while run_end < codes.len() && codes[run_end].0 == code {
            run_end += 1;
        }
        let qlen = (run_end - run_start) as u64;
        run_start = run_end;
        let Some(max_count) = index.list_max_count(code) else {
            run_suffix.clear();
            return false;
        };
        run_suffix.push(qlen.saturating_mul(max_count as u64));
    }
    let mut acc = 0u64;
    for pot in run_suffix.iter_mut().rev() {
        acc = acc.saturating_add(*pot);
        *pot = acc;
    }
    // τ_j = floor − suffix_j is largest at the final run; if it is not
    // positive even there, the probe can never fire.
    match run_suffix.last() {
        Some(&last) => last < floor,
        None => false,
    }
}

/// The hopeless-block test shared by both accumulate paths: every
/// record in `lo..=hi` is provably unable to reach the coarse floor iff
/// the plan is active (`group_max` present, `tau > 0`) and no covering
/// group has accumulated a count of `tau` or more. Ranges wider than
/// [`MAX_SKIP_SCAN_GROUPS`] groups are decoded rather than scanned.
fn hopeless(group_max: Option<&[u32]>, tau: u32, lo: u32, hi: u32) -> bool {
    let Some(group_max) = group_max else {
        return false;
    };
    if tau == 0 || hi < lo {
        return false;
    }
    let g_lo = lo as usize >> GROUP_SHIFT;
    let g_hi = hi as usize >> GROUP_SHIFT;
    if g_hi - g_lo >= MAX_SKIP_SCAN_GROUPS {
        return false;
    }
    group_max
        .get(g_lo..=g_hi)
        .is_some_and(|groups| groups.iter().all(|&m| m < tau))
}

/// Per-run visitor for the offsets path: replicates the stamped
/// accumulate (count hit pairs, record diagonals) and answers the block
/// decoder's skip probes against the current run's τ threshold.
struct HitAccumulator<'a> {
    generation: u32,
    limit: usize,
    qrun: &'a [(u64, u32)],
    stamp: &'a mut [u32],
    counts: &'a mut [u32],
    slot: &'a mut [u32],
    touched: &'a mut Vec<u32>,
    hits: &'a mut Vec<(u32, i64)>,
    group_max: Option<&'a mut [u32]>,
    tau: u32,
}

impl PostingsVisitor for HitAccumulator<'_> {
    fn visit(&mut self, record: u32, offset: u32) {
        let r = record as usize;
        if self.stamp[r] != self.generation {
            if self.touched.len() >= self.limit {
                return;
            }
            self.stamp[r] = self.generation;
            self.counts[r] = 0;
            self.slot[r] = self.touched.len() as u32;
            self.touched.push(record);
        }
        let total = self.counts[r] + self.qrun.len() as u32;
        self.counts[r] = total;
        if let Some(group_max) = self.group_max.as_deref_mut() {
            let g = &mut group_max[r >> GROUP_SHIFT];
            if *g < total {
                *g = total;
            }
        }
        for &(_, qpos) in self.qrun {
            self.hits.push((record, offset as i64 - qpos as i64));
        }
    }

    fn skip_block(&mut self, lo: u32, hi: u32) -> bool {
        hopeless(self.group_max.as_deref(), self.tau, lo, hi)
    }
}

/// Per-run visitor for the counts path (record-granularity indexes and
/// counts-mode decodes): same stamped accumulate, count contributions
/// scaled by the run's query-position multiplicity.
struct CountsAccumulator<'a> {
    generation: u32,
    limit: usize,
    qpositions: u32,
    total_hits: &'a mut u64,
    stamp: &'a mut [u32],
    counts: &'a mut [u32],
    slot: &'a mut [u32],
    touched: &'a mut Vec<u32>,
    group_max: Option<&'a mut [u32]>,
    tau: u32,
}

impl PostingsVisitor for CountsAccumulator<'_> {
    fn visit(&mut self, record: u32, count: u32) {
        let r = record as usize;
        if self.stamp[r] != self.generation {
            if self.touched.len() >= self.limit {
                return;
            }
            self.stamp[r] = self.generation;
            self.counts[r] = 0;
            self.slot[r] = self.touched.len() as u32;
            self.touched.push(record);
        }
        let contribution = count * self.qpositions;
        let total = self.counts[r] + contribution;
        self.counts[r] = total;
        *self.total_hits += contribution as u64;
        if let Some(group_max) = self.group_max.as_deref_mut() {
            let g = &mut group_max[r >> GROUP_SHIFT];
            if *g < total {
                *g = total;
            }
        }
    }

    fn skip_block(&mut self, lo: u32, hi: u32) -> bool {
        hopeless(self.group_max.as_deref(), self.tau, lo, hi)
    }
}

/// Run coarse search for `query` over `index`.
///
/// Convenience wrapper over [`coarse_rank_with`] that pays one scratch
/// allocation; batch callers should hold a [`CoarseScratch`] and call
/// [`coarse_rank_with`] directly.
pub fn coarse_rank<S: PostingsSource>(
    index: &S,
    query: &[Base],
    params: &SearchParams,
) -> Result<CoarseOutcome, IndexError> {
    coarse_rank_with(index, query, params, &mut CoarseScratch::new())
}

/// Run coarse search for `query` over `index`, reusing `scratch` for all
/// working memory. Results are independent of the scratch's history.
pub fn coarse_rank_with<S: PostingsSource>(
    index: &S,
    query: &[Base],
    params: &SearchParams,
    scratch: &mut CoarseScratch,
) -> Result<CoarseOutcome, IndexError> {
    coarse_rank_explain(index, query, params, scratch, None)
}

/// [`coarse_rank_with`], additionally filling `explain` (when given) with
/// the per-list evidence behind every decode/skip decision. Collection is
/// passive: the outcome is bit-identical whether `explain` is `None` or
/// `Some` (pinned by the `explain_identity` tests).
pub fn coarse_rank_explain<S: PostingsSource>(
    index: &S,
    query: &[Base],
    params: &SearchParams,
    scratch: &mut CoarseScratch,
    mut explain: Option<&mut CoarseExplain>,
) -> Result<CoarseOutcome, IndexError> {
    let iparams = index.index_params();
    if let Some(ex) = explain.as_deref_mut() {
        ex.k = iparams.k;
        ex.stopping = match iparams.stopping {
            Some(nucdb_index::StopPolicy::DfFraction(f)) => format!("df_fraction:{f}"),
            Some(nucdb_index::StopPolicy::DfAbsolute(limit)) => format!("df_absolute:{limit}"),
            Some(nucdb_index::StopPolicy::TopK(k)) => format!("top_k:{k}"),
            None => "none".to_string(),
        };
        ex.skipping = false;
        ex.floor = 0;
        ex.lists.clear();
        ex.survivors.clear();
    }
    let mut outcome = CoarseOutcome::default();
    let extract_start = std::time::Instant::now();

    // Distinct query intervals and the query positions they occur at,
    // subsampled by the query stride and filtered by low-complexity
    // masking of the query. Sorted (code, qpos) runs stand in for the old
    // per-query hash map; ascending code order also means ascending file
    // offsets for the on-disk index.
    let masked = params
        .mask
        .as_ref()
        .map(|dust| nucdb_seq::complexity::mask_regions(query, dust))
        .unwrap_or_default();
    let stride = params.query_stride.max(1);
    scratch.codes.clear();
    for (qpos, code) in iparams.extract(query) {
        if qpos as usize % stride == 0 && !nucdb_seq::complexity::is_masked(&masked, qpos as usize)
        {
            scratch.codes.push((code, qpos));
        }
    }
    scratch.codes.sort_unstable();
    let mut prev_code = None;
    for &(code, _) in &scratch.codes {
        if prev_code != Some(code) {
            outcome.intervals_looked_up += 1;
            prev_code = Some(code);
        }
    }
    outcome.extract_nanos = extract_start.elapsed().as_nanos() as u64;
    if scratch.codes.is_empty() || index.num_records() == 0 {
        return Ok(outcome);
    }

    // Record-granularity indexes carry no offsets: only count-based
    // rankings are possible, via the cheaper counts decode.
    if iparams.granularity == Granularity::Records {
        if matches!(params.ranking, RankingScheme::Frame { .. }) {
            return Err(IndexError::Unsupported(
                "frame ranking requires an offset-granularity index",
            ));
        }
        return coarse_rank_counts(index, params, scratch, outcome, explain);
    }

    // Accumulate hit counts and (record, diagonal) pairs, optionally
    // capping how many distinct records are tracked (accumulator
    // limiting: once full, hits on untracked records are dropped).
    // Records are tracked in first-touch order, which under a limit is
    // ascending-code order of the first contributing interval.
    let accumulator_limit = params.max_accumulators.unwrap_or(usize::MAX).max(1);
    scratch.begin(index.num_records() as usize);
    // Hopeless-block skipping is sound only when every counted record is
    // tracked (no accumulator limit): a skipped record's final count is
    // then provably below the floor, so dropping its hits cannot change
    // the surviving candidates.
    let floor = params.min_coarse_hits as u64;
    let skipping = params.max_accumulators.is_none()
        && build_skip_plan(index, &scratch.codes, floor, &mut scratch.run_suffix);
    if skipping {
        let groups = (index.num_records() as usize).div_ceil(GROUP_LEN);
        if scratch.group_max.len() != groups {
            scratch.group_max.clear();
            scratch.group_max.resize(groups, 0);
        }
    }
    if let Some(ex) = explain.as_deref_mut() {
        ex.skipping = skipping;
        ex.floor = floor;
    }
    let CoarseScratch {
        generation,
        stamp,
        counts,
        slot,
        touched,
        hits,
        diagonals,
        cursor,
        codes,
        io_buf,
        candidates,
        group_max,
        run_suffix,
    } = scratch;
    let generation = *generation;
    let accumulate_start = std::time::Instant::now();

    let mut run_index = 0usize;
    let mut run_start = 0usize;
    while run_start < codes.len() {
        let code = codes[run_start].0;
        let mut run_end = run_start;
        while run_end < codes.len() && codes[run_end].0 == code {
            run_end += 1;
        }
        let qrun = &codes[run_start..run_end];
        run_start = run_end;
        let tau = if skipping {
            floor.saturating_sub(run_suffix[run_index]) as u32
        } else {
            0
        };
        run_index += 1;

        let mut acc = HitAccumulator {
            generation,
            limit: accumulator_limit,
            qrun,
            stamp: stamp.as_mut_slice(),
            counts: counts.as_mut_slice(),
            slot: slot.as_mut_slice(),
            touched: &mut *touched,
            hits: &mut *hits,
            group_max: skipping.then_some(group_max.as_mut_slice()),
            tau,
        };
        let fetched = index.fetch_stream(code, io_buf, &mut acc)?;
        if let Some(stats) = &fetched {
            outcome.lists_fetched += 1;
            outcome.postings_decoded += stats.ids_decoded;
            outcome.postings_bytes_read += stats.bytes_read;
            outcome.blocks_decoded += stats.blocks_decoded as u64;
            outcome.blocks_skipped += stats.blocks_skipped as u64;
        }
        if let Some(ex) = explain.as_deref_mut() {
            ex.lists.push(list_explain(
                index,
                code,
                qrun.len() as u32,
                tau,
                fetched.as_ref(),
            ));
        }
    }
    outcome.total_hits = hits.len() as u64;
    outcome.accumulate_nanos = accumulate_start.elapsed().as_nanos() as u64;
    if hits.is_empty() {
        return Ok(outcome);
    }
    let rank_start = std::time::Instant::now();

    // Scatter the hit arena into per-record diagonal buckets by counting
    // sort over the known per-record totals, then find each surviving
    // record's best diagonal window (two-pointer over its sorted
    // diagonals). Frame ranking scores by the window; the other schemes
    // still need the diagonal to seed fine search.
    let window = match params.ranking {
        RankingScheme::Frame { window } => window as i64,
        // A modest default tolerance when frames are not the ranking.
        _ => 16,
    };
    cursor.clear();
    let mut running = 0u32;
    for &record in touched.iter() {
        cursor.push(running);
        running += counts[record as usize];
    }
    diagonals.clear();
    diagonals.resize(hits.len(), 0);
    for &(record, diagonal) in hits.iter() {
        let s = slot[record as usize] as usize;
        diagonals[cursor[s] as usize] = diagonal;
        cursor[s] += 1;
    }

    let record_lens = index.record_lens();
    candidates.clear();
    for (s, &record) in touched.iter().enumerate() {
        let total = counts[record as usize];
        if total < params.min_coarse_hits {
            continue;
        }
        // cursor[s] advanced to the bucket end during the scatter.
        let end = cursor[s] as usize;
        let diags = &mut diagonals[end - total as usize..end];
        diags.sort_unstable();
        // Two-pointer max window.
        let mut best_count = 0usize;
        let mut best_lo = 0usize;
        let mut lo = 0usize;
        for hi in 0..diags.len() {
            while diags[hi] - diags[lo] > window {
                lo += 1;
            }
            if hi - lo + 1 > best_count {
                best_count = hi - lo + 1;
                best_lo = lo;
            }
        }
        let window_slice = &diags[best_lo..best_lo + best_count];
        let best_diagonal = window_slice[window_slice.len() / 2];

        let score = match params.ranking {
            RankingScheme::Count => total as f64,
            RankingScheme::Proportional => {
                total as f64 / (record_lens[record as usize].max(1) as f64)
            }
            RankingScheme::Frame { .. } => best_count as f64,
        };
        candidates.push(CoarseHit {
            record,
            score,
            hits: total,
            frame_hits: best_count as u32,
            best_diagonal,
        });
    }

    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("coarse scores are finite")
            .then(a.record.cmp(&b.record))
    });
    candidates.truncate(params.max_candidates);
    outcome.candidates.extend_from_slice(candidates);
    if let Some(ex) = explain {
        record_survivors(ex, candidates);
    }
    outcome.rank_nanos = rank_start.elapsed().as_nanos() as u64;
    Ok(outcome)
}

/// Build one [`ListExplain`] from a fetch result. `None` stats mean the
/// interval is absent from the index (unseen or stopped).
fn list_explain<S: PostingsSource + ?Sized>(
    index: &S,
    code: u64,
    qlen: u32,
    tau: u32,
    stats: Option<&FetchStats>,
) -> ListExplain {
    match stats {
        Some(stats) => ListExplain {
            code,
            qlen,
            df: stats.df,
            max_count: index.list_max_count(code),
            tau,
            ids_decoded: stats.ids_decoded,
            bytes_read: stats.bytes_read,
            blocks_decoded: stats.blocks_decoded,
            blocks_skipped: stats.blocks_skipped,
            absent: false,
        },
        None => ListExplain {
            code,
            qlen,
            absent: true,
            ..ListExplain::default()
        },
    }
}

fn record_survivors(explain: &mut CoarseExplain, candidates: &[CoarseHit]) {
    explain.survivors.clear();
    explain
        .survivors
        .extend(candidates.iter().map(|hit| SurvivorExplain {
            record: hit.record,
            score: hit.score,
            hits: hit.hits,
            frame_hits: hit.frame_hits,
            best_diagonal: hit.best_diagonal,
        }));
}

/// Count-based coarse ranking over a record-granularity index: the same
/// accumulation without diagonals (no offsets exist). Candidates carry
/// `best_diagonal = 0`; the engine compensates by running unbanded fine
/// alignment. Reads the query's code runs from `scratch.codes` (prepared
/// by [`coarse_rank_explain`]).
fn coarse_rank_counts<S: PostingsSource>(
    index: &S,
    params: &SearchParams,
    scratch: &mut CoarseScratch,
    mut outcome: CoarseOutcome,
    mut explain: Option<&mut CoarseExplain>,
) -> Result<CoarseOutcome, IndexError> {
    let accumulator_limit = params.max_accumulators.unwrap_or(usize::MAX).max(1);
    scratch.begin(index.num_records() as usize);
    // Same soundness condition as the offsets path; the counts filter
    // floors at 1 even when `min_coarse_hits` is 0.
    let floor = params.min_coarse_hits.max(1) as u64;
    let skipping = params.max_accumulators.is_none()
        && build_skip_plan(index, &scratch.codes, floor, &mut scratch.run_suffix);
    if skipping {
        let groups = (index.num_records() as usize).div_ceil(GROUP_LEN);
        if scratch.group_max.len() != groups {
            scratch.group_max.clear();
            scratch.group_max.resize(groups, 0);
        }
    }
    if let Some(ex) = explain.as_deref_mut() {
        ex.skipping = skipping;
        ex.floor = floor;
    }
    let CoarseScratch {
        generation,
        stamp,
        counts,
        slot,
        touched,
        codes,
        io_buf,
        candidates,
        group_max,
        run_suffix,
        ..
    } = scratch;
    let generation = *generation;
    let accumulate_start = std::time::Instant::now();
    let mut total_hits = 0u64;

    let mut run_index = 0usize;
    let mut run_start = 0usize;
    while run_start < codes.len() {
        let code = codes[run_start].0;
        let mut run_end = run_start;
        while run_end < codes.len() && codes[run_end].0 == code {
            run_end += 1;
        }
        let qpositions = (run_end - run_start) as u32;
        run_start = run_end;
        let tau = if skipping {
            floor.saturating_sub(run_suffix[run_index]) as u32
        } else {
            0
        };
        run_index += 1;

        let mut acc = CountsAccumulator {
            generation,
            limit: accumulator_limit,
            qpositions,
            total_hits: &mut total_hits,
            stamp: stamp.as_mut_slice(),
            counts: counts.as_mut_slice(),
            slot: slot.as_mut_slice(),
            touched: &mut *touched,
            group_max: skipping.then_some(group_max.as_mut_slice()),
            tau,
        };
        let fetched = index.fetch_counts_stream(code, io_buf, &mut acc)?;
        if let Some(stats) = &fetched {
            outcome.lists_fetched += 1;
            outcome.postings_decoded += stats.ids_decoded;
            outcome.postings_bytes_read += stats.bytes_read;
            outcome.blocks_decoded += stats.blocks_decoded as u64;
            outcome.blocks_skipped += stats.blocks_skipped as u64;
        }
        if let Some(ex) = explain.as_deref_mut() {
            ex.lists
                .push(list_explain(index, code, qpositions, tau, fetched.as_ref()));
        }
    }
    outcome.total_hits = total_hits;
    outcome.accumulate_nanos = accumulate_start.elapsed().as_nanos() as u64;
    let rank_start = std::time::Instant::now();

    let record_lens = index.record_lens();
    candidates.clear();
    for &record in touched.iter() {
        let total = counts[record as usize];
        if total < params.min_coarse_hits.max(1) {
            continue;
        }
        candidates.push(CoarseHit {
            record,
            score: match params.ranking {
                RankingScheme::Proportional => {
                    total as f64 / (record_lens[record as usize].max(1) as f64)
                }
                _ => total as f64,
            },
            hits: total,
            frame_hits: 0,
            best_diagonal: 0,
        });
    }
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("coarse scores are finite")
            .then(a.record.cmp(&b.record))
    });
    candidates.truncate(params.max_candidates);
    outcome.candidates.extend_from_slice(candidates);
    if let Some(ex) = explain {
        record_survivors(ex, candidates);
    }
    outcome.rank_nanos = rank_start.elapsed().as_nanos() as u64;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucdb_index::IndexBuilder;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn build(records: &[&[u8]], k: usize) -> CompressedIndex {
        let mut builder = IndexBuilder::new(IndexParams::new(k));
        for r in records {
            builder.add_record(&bases(r));
        }
        builder.finish()
    }

    fn params(ranking: RankingScheme) -> SearchParams {
        SearchParams {
            ranking,
            min_coarse_hits: 1,
            ..SearchParams::default()
        }
    }

    #[test]
    fn exact_copy_ranks_first() {
        let index = build(
            &[
                b"GGGGGGGGGGGGGGGGGGGGGGGG",
                b"TTTTACGTAGCTAGCTGGATCCTT", // contains the query
                b"CACACACACACACACACACACACA",
            ],
            8,
        );
        let query = bases(b"ACGTAGCTAGCTGGATCC");
        for ranking in [
            RankingScheme::Count,
            RankingScheme::Proportional,
            RankingScheme::Frame { window: 8 },
        ] {
            let outcome = coarse_rank(&index, &query, &params(ranking)).unwrap();
            assert!(!outcome.candidates.is_empty(), "{ranking:?}");
            assert_eq!(outcome.candidates[0].record, 1, "{ranking:?}");
        }
    }

    #[test]
    fn diagonal_is_recovered() {
        // Query matches record 0 at offset 6 → diagonal +6.
        let index = build(&[b"CCCCCCACGTAGCTAGCTGGATCCAAAA"], 8);
        let query = bases(b"ACGTAGCTAGCTGGATCC");
        let outcome =
            coarse_rank(&index, &query, &params(RankingScheme::Frame { window: 4 })).unwrap();
        assert_eq!(outcome.candidates.len(), 1);
        assert_eq!(outcome.candidates[0].best_diagonal, 6);
        // All hits of an exact embedded match share one diagonal.
        assert_eq!(outcome.candidates[0].frame_hits, outcome.candidates[0].hits);
    }

    #[test]
    fn frame_beats_count_on_scattered_hits() {
        // Record 0 shares many intervals with the query but scattered
        // (shuffled blocks); record 1 embeds a contiguous fragment.
        // Count ranks 0 first or equal; Frame must rank 1 first.
        let query = bases(b"AACCGGTTACGTAGCTTGCATGCAAACCGGTT");
        // Blocks of the query reordered and repeated: many hits, no
        // common diagonal.
        let scattered = b"TGCATGCAACGTAGCTAACCGGTTAACCGGTTAACCGGTT";
        let contiguous = b"TTTTTTACGTAGCTTGCATGCATTTTTTTTTT"; // one fragment
        let index = build(&[scattered, contiguous], 8);

        let frame =
            coarse_rank(&index, &query, &params(RankingScheme::Frame { window: 4 })).unwrap();
        assert_eq!(
            frame.candidates[0].record, 1,
            "frame should prefer the contiguous match"
        );

        let count = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(
            count.candidates[0].record, 0,
            "count should prefer the scattered record"
        );
    }

    #[test]
    fn proportional_corrects_length_bias() {
        // A short record with one shared interval vs a long record with
        // two: proportional prefers the short one, count the long one.
        let short = b"ACGTAGCTAGCT"; // 12 bases, hits once
        let mut long = b"ACGTAGCTAGCTACGTAGCTAGCT".to_vec(); // hits more
        long.extend(std::iter::repeat_n(b'G', 400));
        let index = build(&[short, &long], 12);
        let query = bases(b"ACGTAGCTAGCT");

        let count = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(count.candidates[0].record, 1);
        let prop = coarse_rank(&index, &query, &params(RankingScheme::Proportional)).unwrap();
        assert_eq!(prop.candidates[0].record, 0);
    }

    #[test]
    fn min_hits_filters_noise() {
        let index = build(&[b"ACGTAGCTTTTTTTTT", b"GGGGGGGGGGGGGGGG"], 8);
        let query = bases(b"ACGTAGCTAAAAAAAA"); // one shared interval with record 0
        let strict = SearchParams {
            min_coarse_hits: 2,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&index, &query, &strict).unwrap();
        assert!(outcome.candidates.is_empty());
        let lax = SearchParams {
            min_coarse_hits: 1,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&index, &query, &lax).unwrap();
        assert_eq!(outcome.candidates.len(), 1);
    }

    #[test]
    fn candidate_cutoff_respected() {
        let records: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let mut r = b"ACGTAGCTAGCTGGAT".to_vec();
                r.push(b"ACGT"[i % 4]);
                r
            })
            .collect();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let index = build(&refs, 8);
        let query = bases(b"ACGTAGCTAGCTGGAT");
        let p = SearchParams {
            max_candidates: 5,
            min_coarse_hits: 1,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&index, &query, &p).unwrap();
        assert_eq!(outcome.candidates.len(), 5);
        // Scores descend.
        for pair in outcome.candidates.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn short_query_yields_empty_outcome() {
        let index = build(&[b"ACGTACGTACGTACGT"], 8);
        let query = bases(b"ACGT"); // shorter than k
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(outcome.candidates.is_empty());
        assert_eq!(outcome.intervals_looked_up, 0);
    }

    #[test]
    fn query_stride_reduces_lookups() {
        let index = build(&[b"ACGTAGCTAGCTGGATCCTTACGGATCCAT"], 8);
        let query = bases(b"ACGTAGCTAGCTGGATCCTTACGGATCC");
        let all = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        let mut strided = params(RankingScheme::Count);
        strided.query_stride = 4;
        let sampled = coarse_rank(&index, &query, &strided).unwrap();
        assert!(sampled.intervals_looked_up < all.intervals_looked_up);
        assert!(sampled.intervals_looked_up >= all.intervals_looked_up / 6);
        // The exact embedded match still surfaces.
        assert_eq!(sampled.candidates[0].record, 0);
    }

    #[test]
    fn accumulator_limit_caps_tracked_records() {
        // 10 records share the query's interval; with a limit of 3 only
        // the first 3 can become candidates.
        let records: Vec<&[u8]> = vec![b"ACGTAGCTAGCTGGAT"; 10];
        let index = build(&records, 8);
        let query = bases(b"ACGTAGCTAGCTGGAT");
        let mut limited = params(RankingScheme::Count);
        limited.max_accumulators = Some(3);
        let outcome = coarse_rank(&index, &query, &limited).unwrap();
        assert_eq!(outcome.candidates.len(), 3);
        let ids: Vec<u32> = outcome.candidates.iter().map(|c| c.record).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Unlimited finds all ten.
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(outcome.candidates.len(), 10);
    }

    #[test]
    fn masking_suppresses_repeat_flood() {
        // Record 0 is a pure poly-A repeat; record 1 embeds the real
        // target. A query contaminated with poly-A floods unmasked
        // coarse search via record 0; masking removes the flood while
        // keeping the real match.
        let repeat_record = vec![b'A'; 400];
        let mut real = b"TGCCGTTGCA".to_vec();
        real.extend_from_slice(b"ACGTAGCTGGATCCTTACGGATCCAGGT");
        real.extend_from_slice(b"CCGGTTGGCC");
        let index = build(&[&repeat_record, &real], 8);

        let mut query_ascii = b"ACGTAGCTGGATCCTTACGGATCCAGGT".to_vec();
        query_ascii.extend(vec![b'A'; 120]); // contamination
        let query = bases(&query_ascii);

        let unmasked = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(
            unmasked.candidates.iter().any(|c| c.record == 0),
            "repeat record should flood the unmasked ranking"
        );

        let mut masked_params = params(RankingScheme::Count);
        masked_params.mask = Some(nucdb_seq::DustParams::default());
        let masked = coarse_rank(&index, &query, &masked_params).unwrap();
        assert!(masked.total_hits < unmasked.total_hits / 4);
        assert_eq!(
            masked.candidates[0].record, 1,
            "real target survives masking"
        );
        assert!(
            !masked.candidates.iter().any(|c| c.record == 0),
            "repeat record should vanish under masking"
        );
    }

    #[test]
    fn cost_counters_are_plausible() {
        let index = build(&[b"ACGTACGTACGTACGT", b"ACGTACGTACGTACGT"], 8);
        let query = bases(b"ACGTACGTACGT");
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(outcome.intervals_looked_up > 0);
        assert!(outcome.lists_fetched <= outcome.intervals_looked_up);
        assert!(outcome.total_hits >= outcome.postings_decoded);
    }

    /// A collection engineered so hopeless-block skipping can fire: many
    /// records share a long common segment (multi-block lists), and one
    /// record additionally matches the query's unique half.
    fn skip_collection() -> (Vec<Vec<u8>>, Vec<Base>) {
        let common = b"ACGTAGCTAGCTGGATCCAATTGGCCAACC";
        let unique = b"TGCATGCATTGCAACGGTACCTTAGGCATC";
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut full = Vec::from(&common[..]);
        full.extend_from_slice(unique);
        records.push(full);
        for i in 0..400usize {
            let mut r = Vec::from(&common[..]);
            // Distinct tails so records differ, built from one base to
            // avoid accidentally sharing query intervals.
            r.extend(std::iter::repeat_n(b"GCTA"[i % 4], 8));
            records.push(r);
        }
        let mut query = Vec::from(&common[..]);
        query.extend_from_slice(unique);
        (records, bases(&query))
    }

    fn build_with(records: &[Vec<u8>], k: usize, codec: nucdb_index::ListCodec) -> CompressedIndex {
        let mut builder = IndexBuilder::new(IndexParams::new(k)).with_codec(codec);
        for r in records {
            builder.add_record(&bases(r));
        }
        builder.finish()
    }

    #[test]
    fn block_codec_ranks_identically_to_paper_codec() {
        use nucdb_index::ListCodec;
        let (records, query) = skip_collection();
        let paper = build_with(&records, 8, ListCodec::Paper);
        let block = build_with(&records, 8, ListCodec::Block);
        for min_coarse_hits in [0, 1, 2, 16, 40, 80, 200] {
            let p = SearchParams {
                min_coarse_hits,
                max_candidates: 500,
                ..SearchParams::default()
            };
            let a = coarse_rank(&paper, &query, &p).unwrap();
            let b = coarse_rank(&block, &query, &p).unwrap();
            assert_eq!(a.candidates, b.candidates, "floor {min_coarse_hits}");
            // Skipping may reduce decode work but never hit accounting
            // for surviving candidates.
            assert!(a.total_hits >= b.total_hits, "floor {min_coarse_hits}");
        }
    }

    #[test]
    fn hopeless_blocks_are_skipped_under_a_high_floor() {
        use nucdb_index::ListCodec;
        let (records, query) = skip_collection();
        let block = build_with(&records, 8, ListCodec::Block);
        let p = SearchParams {
            // Only record 0 (common + unique halves) can clear this.
            min_coarse_hits: 40,
            max_candidates: 500,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&block, &query, &p).unwrap();
        assert!(
            outcome.blocks_skipped > 0,
            "expected skips: decoded {} skipped {}",
            outcome.blocks_decoded,
            outcome.blocks_skipped
        );
        assert!(outcome.postings_bytes_read > 0);
        assert!(outcome.candidates.iter().any(|c| c.record == 0));
        // Every survivor genuinely clears the floor.
        assert!(outcome.candidates.iter().all(|c| c.hits >= 40));
    }

    #[test]
    fn scratch_reuse_across_codecs_and_floors_is_sound() {
        use nucdb_index::ListCodec;
        let (records, query) = skip_collection();
        let paper = build_with(&records, 8, ListCodec::Paper);
        let block = build_with(&records, 8, ListCodec::Block);
        let mut scratch = CoarseScratch::new();
        // Interleave skip-active and skip-inactive queries through one
        // scratch; stale group maxima must never suppress a candidate.
        for min_coarse_hits in [40, 1, 80, 2, 40] {
            let p = SearchParams {
                min_coarse_hits,
                max_candidates: 500,
                ..SearchParams::default()
            };
            let fresh = coarse_rank(&block, &query, &p).unwrap();
            let reused = coarse_rank_with(&block, &query, &p, &mut scratch).unwrap();
            assert_eq!(
                fresh.candidates, reused.candidates,
                "floor {min_coarse_hits}"
            );
            let baseline = coarse_rank_with(&paper, &query, &p, &mut scratch).unwrap();
            assert_eq!(
                baseline.candidates, fresh.candidates,
                "floor {min_coarse_hits}"
            );
        }
    }

    #[test]
    fn accumulator_limit_disables_skipping() {
        use nucdb_index::ListCodec;
        let (records, query) = skip_collection();
        let block = build_with(&records, 8, ListCodec::Block);
        let p = SearchParams {
            min_coarse_hits: 40,
            max_accumulators: Some(8),
            max_candidates: 500,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&block, &query, &p).unwrap();
        assert_eq!(outcome.blocks_skipped, 0);
    }

    #[test]
    fn work_counters_report_block_decode_activity() {
        use nucdb_index::ListCodec;
        let (records, query) = skip_collection();
        let paper = build_with(&records, 8, ListCodec::Paper);
        let block = build_with(&records, 8, ListCodec::Block);
        let p = SearchParams {
            min_coarse_hits: 1,
            max_candidates: 500,
            ..SearchParams::default()
        };
        let a = coarse_rank(&paper, &query, &p).unwrap();
        let b = coarse_rank(&block, &query, &p).unwrap();
        // No floor pressure → nothing skipped, every posting decoded on
        // both sides.
        assert_eq!(b.blocks_skipped, 0);
        assert!(b.blocks_decoded > 0);
        assert_eq!(a.postings_decoded, b.postings_decoded);
        assert!(a.postings_bytes_read > 0 && b.postings_bytes_read > 0);
        assert_eq!(a.blocks_decoded, 0);
    }
}
