//! Coarse search: rank records by index evidence of a local alignment.
//!
//! Every interval of the query is looked up in the inverted index; each
//! posting contributes a *hit* `(record, diagonal)`, where the diagonal is
//! the record offset minus the query position. Records are then scored by
//! one of three schemes (ablated in experiment **E8**):
//!
//! * [`RankingScheme::Count`] — raw hit count. Cheap, but long records
//!   accumulate accidental hits.
//! * [`RankingScheme::Proportional`] — hit count normalised by record
//!   length, correcting the length bias.
//! * [`RankingScheme::Frame`] — the paper family's key insight: hits that
//!   belong to a real local alignment share (nearly) one diagonal, so the
//!   score is the maximum number of hits within a diagonal window whose
//!   width tolerates small indels. Accidental hits scatter across
//!   diagonals and stop mattering.
//!
//! The winning diagonal is reported with each candidate, seeding the
//! banded alignment of fine search.

use nucdb_index::{
    CompressedIndex, Granularity, IndexError, IndexParams, OnDiskIndex, PostingsList,
};
use nucdb_seq::Base;

use crate::params::SearchParams;

/// Anything coarse search can fetch postings from (in-memory index,
/// on-disk index, or the engine's variant wrapper).
///
/// The streaming methods (`fetch_with`, `fetch_counts_with`) are what the
/// hot path calls: they drive a visitor per posting instead of
/// materialising nested lists, reusing `io_buf` for the raw list bytes.
/// Their default impls are backed by the materialising methods, so
/// third-party sources keep compiling (and working) unchanged.
pub trait PostingsSource {
    /// Number of records the index covers.
    fn num_records(&self) -> u32;
    /// Per-record lengths (needed for proportional ranking and offset
    /// decoding).
    fn record_lens(&self) -> &[u32];
    /// The index parameters (interval length, stride, stopping,
    /// granularity).
    fn index_params(&self) -> &IndexParams;
    /// Fetch the postings list for an interval code (offset granularity
    /// only).
    fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError>;
    /// Fetch `(record, count)` pairs for an interval code (either
    /// granularity).
    fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError>;

    /// Streaming fetch: call `visit(record, offset)` for every posting of
    /// `code`, in record order with offsets ascending per record, reusing
    /// `io_buf` as the raw-bytes scratch. Returns the list's `df`
    /// (`Ok(None)` if the interval is absent).
    fn fetch_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        let _ = io_buf;
        match self.fetch(code)? {
            None => Ok(None),
            Some(list) => {
                let df = list.df() as u32;
                for posting in &list.entries {
                    for &offset in &posting.offsets {
                        visit(posting.record, offset);
                    }
                }
                Ok(Some(df))
            }
        }
    }

    /// Streaming counts fetch: call `visit(record, count)` per entry of
    /// `code`'s list (either granularity). Returns the list's `df`
    /// (`Ok(None)` if the interval is absent).
    fn fetch_counts_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        let _ = io_buf;
        match self.fetch_counts(code)? {
            None => Ok(None),
            Some(counts) => {
                let df = counts.len() as u32;
                for (record, count) in counts {
                    visit(record, count);
                }
                Ok(Some(df))
            }
        }
    }
}

/// Implement the forwarding boilerplate of [`PostingsSource`] for a
/// concrete index type; the caller supplies only the two streaming
/// methods (which differ in whether the type wants the I/O buffer).
macro_rules! forward_postings_source {
    ($ty:ty { $($streaming:item)* }) => {
        impl PostingsSource for $ty {
            fn num_records(&self) -> u32 {
                <$ty>::num_records(self)
            }

            fn record_lens(&self) -> &[u32] {
                <$ty>::record_lens(self)
            }

            fn index_params(&self) -> &IndexParams {
                self.params()
            }

            fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
                self.postings(code)
            }

            fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
                self.counts(code)
            }

            $($streaming)*
        }
    };
}

forward_postings_source!(CompressedIndex {
    fn fetch_with(
        &self,
        code: u64,
        _io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.postings_with(code, visit)
    }

    fn fetch_counts_with(
        &self,
        code: u64,
        _io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.counts_with(code, visit)
    }
});

forward_postings_source!(OnDiskIndex {
    fn fetch_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.postings_with(code, io_buf, visit)
    }

    fn fetch_counts_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        self.counts_with(code, io_buf, visit)
    }
});

/// Coarse ranking scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankingScheme {
    /// Total interval hits.
    Count,
    /// Hits divided by record length.
    Proportional,
    /// Most hits within any diagonal window of the given width (in
    /// bases); the window tolerates indels of up to that many bases
    /// inside one local alignment.
    Frame {
        /// Diagonal window width.
        window: u32,
    },
}

impl Default for RankingScheme {
    fn default() -> RankingScheme {
        RankingScheme::Frame { window: 16 }
    }
}

/// One coarse candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseHit {
    /// Record id.
    pub record: u32,
    /// Score under the chosen ranking scheme (higher is better).
    pub score: f64,
    /// Total interval hits for the record.
    pub hits: u32,
    /// Hits within the best diagonal window.
    pub frame_hits: u32,
    /// Centre of the best diagonal window (record offset − query
    /// position); seeds the fine-search band.
    pub best_diagonal: i64,
}

/// The result of coarse search, with the cost counters experiments report.
#[derive(Debug, Clone, Default)]
pub struct CoarseOutcome {
    /// Top candidates, descending score.
    pub candidates: Vec<CoarseHit>,
    /// Distinct query intervals looked up.
    pub intervals_looked_up: u64,
    /// Lists found in the index.
    pub lists_fetched: u64,
    /// Postings entries decoded across all fetched lists.
    pub postings_decoded: u64,
    /// Total `(query position, record offset)` hit pairs accumulated.
    pub total_hits: u64,
    /// Nanoseconds extracting and sorting the query's interval codes.
    pub extract_nanos: u64,
    /// Nanoseconds fetching postings and accumulating hits.
    pub accumulate_nanos: u64,
    /// Nanoseconds scattering diagonals, scoring and ranking candidates.
    pub rank_nanos: u64,
}

/// Reusable working memory for coarse search.
///
/// A fresh query costs zero allocation once a scratch has warmed up: the
/// per-record accumulators are *generation-stamped* (a record's counter is
/// valid only when its stamp equals the current generation, so starting a
/// query is a single integer increment instead of an `O(num_records)`
/// zeroing), hits land in a reusable arena, and per-record diagonal
/// buckets are placed by counting sort over the already-known per-record
/// hit counts — so only records that pass `min_coarse_hits` ever have
/// their diagonals sorted, replacing the old global sort of every hit.
///
/// One scratch serves any number of sequential queries (and both strands
/// of each); results are identical whether a scratch is fresh or reused.
/// Scratches are not `Sync` — give each worker thread its own.
#[derive(Debug, Default)]
pub struct CoarseScratch {
    /// Current query generation; `stamp[r] == generation` marks record
    /// `r`'s entries in `counts`/`slot` as live.
    generation: u32,
    stamp: Vec<u32>,
    /// Per-record accumulated hit count (valid under the stamp).
    counts: Vec<u32>,
    /// Per-record index into `touched` (valid under the stamp).
    slot: Vec<u32>,
    /// Records hit this query, in first-touch order.
    touched: Vec<u32>,
    /// Hit arena: `(record, diagonal)` in arrival order.
    hits: Vec<(u32, i64)>,
    /// Diagonal buckets, grouped per touched record by counting sort.
    diagonals: Vec<i64>,
    /// Per-touched-record scatter cursors (prefix sums, then bucket ends).
    cursor: Vec<u32>,
    /// The query's `(interval code, query position)` pairs, sorted — runs
    /// of one code replace the old per-query hash map.
    codes: Vec<(u64, u32)>,
    /// Raw postings bytes for the on-disk index's positional reads.
    io_buf: Vec<u8>,
    /// Candidate build area (sorted and truncated before copy-out).
    candidates: Vec<CoarseHit>,
}

impl CoarseScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> CoarseScratch {
        CoarseScratch::default()
    }

    /// Start a query over `num_records` records: bump the generation and
    /// clear the per-query arenas. O(1) amortised — the stamp table is
    /// only rebuilt when the index size changes or the generation wraps.
    fn begin(&mut self, num_records: usize) {
        if self.stamp.len() != num_records {
            self.stamp.clear();
            self.stamp.resize(num_records, 0);
            self.counts.clear();
            self.counts.resize(num_records, 0);
            self.slot.clear();
            self.slot.resize(num_records, 0);
            self.generation = 0;
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.touched.clear();
        self.hits.clear();
    }
}

/// Run coarse search for `query` over `index`.
///
/// Convenience wrapper over [`coarse_rank_with`] that pays one scratch
/// allocation; batch callers should hold a [`CoarseScratch`] and call
/// [`coarse_rank_with`] directly.
pub fn coarse_rank<S: PostingsSource>(
    index: &S,
    query: &[Base],
    params: &SearchParams,
) -> Result<CoarseOutcome, IndexError> {
    coarse_rank_with(index, query, params, &mut CoarseScratch::new())
}

/// Run coarse search for `query` over `index`, reusing `scratch` for all
/// working memory. Results are independent of the scratch's history.
pub fn coarse_rank_with<S: PostingsSource>(
    index: &S,
    query: &[Base],
    params: &SearchParams,
    scratch: &mut CoarseScratch,
) -> Result<CoarseOutcome, IndexError> {
    let iparams = index.index_params();
    let mut outcome = CoarseOutcome::default();
    let extract_start = std::time::Instant::now();

    // Distinct query intervals and the query positions they occur at,
    // subsampled by the query stride and filtered by low-complexity
    // masking of the query. Sorted (code, qpos) runs stand in for the old
    // per-query hash map; ascending code order also means ascending file
    // offsets for the on-disk index.
    let masked = params
        .mask
        .as_ref()
        .map(|dust| nucdb_seq::complexity::mask_regions(query, dust))
        .unwrap_or_default();
    let stride = params.query_stride.max(1);
    scratch.codes.clear();
    for (qpos, code) in iparams.extract(query) {
        if qpos as usize % stride == 0 && !nucdb_seq::complexity::is_masked(&masked, qpos as usize)
        {
            scratch.codes.push((code, qpos));
        }
    }
    scratch.codes.sort_unstable();
    let mut prev_code = None;
    for &(code, _) in &scratch.codes {
        if prev_code != Some(code) {
            outcome.intervals_looked_up += 1;
            prev_code = Some(code);
        }
    }
    outcome.extract_nanos = extract_start.elapsed().as_nanos() as u64;
    if scratch.codes.is_empty() || index.num_records() == 0 {
        return Ok(outcome);
    }

    // Record-granularity indexes carry no offsets: only count-based
    // rankings are possible, via the cheaper counts decode.
    if iparams.granularity == Granularity::Records {
        if matches!(params.ranking, RankingScheme::Frame { .. }) {
            return Err(IndexError::Unsupported(
                "frame ranking requires an offset-granularity index",
            ));
        }
        return coarse_rank_counts(index, params, scratch, outcome);
    }

    // Accumulate hit counts and (record, diagonal) pairs, optionally
    // capping how many distinct records are tracked (accumulator
    // limiting: once full, hits on untracked records are dropped).
    // Records are tracked in first-touch order, which under a limit is
    // ascending-code order of the first contributing interval.
    let accumulator_limit = params.max_accumulators.unwrap_or(usize::MAX).max(1);
    scratch.begin(index.num_records() as usize);
    let CoarseScratch {
        generation,
        stamp,
        counts,
        slot,
        touched,
        hits,
        diagonals,
        cursor,
        codes,
        io_buf,
        candidates,
    } = scratch;
    let generation = *generation;
    let accumulate_start = std::time::Instant::now();

    let mut run_start = 0usize;
    while run_start < codes.len() {
        let code = codes[run_start].0;
        let mut run_end = run_start;
        while run_end < codes.len() && codes[run_end].0 == code {
            run_end += 1;
        }
        let qrun = &codes[run_start..run_end];
        run_start = run_end;

        let fetched = index.fetch_with(code, io_buf, &mut |record, offset| {
            let r = record as usize;
            if stamp[r] != generation {
                if touched.len() >= accumulator_limit {
                    return;
                }
                stamp[r] = generation;
                counts[r] = 0;
                slot[r] = touched.len() as u32;
                touched.push(record);
            }
            counts[r] += qrun.len() as u32;
            for &(_, qpos) in qrun {
                hits.push((record, offset as i64 - qpos as i64));
            }
        })?;
        if let Some(df) = fetched {
            outcome.lists_fetched += 1;
            outcome.postings_decoded += df as u64;
        }
    }
    outcome.total_hits = hits.len() as u64;
    outcome.accumulate_nanos = accumulate_start.elapsed().as_nanos() as u64;
    if hits.is_empty() {
        return Ok(outcome);
    }
    let rank_start = std::time::Instant::now();

    // Scatter the hit arena into per-record diagonal buckets by counting
    // sort over the known per-record totals, then find each surviving
    // record's best diagonal window (two-pointer over its sorted
    // diagonals). Frame ranking scores by the window; the other schemes
    // still need the diagonal to seed fine search.
    let window = match params.ranking {
        RankingScheme::Frame { window } => window as i64,
        // A modest default tolerance when frames are not the ranking.
        _ => 16,
    };
    cursor.clear();
    let mut running = 0u32;
    for &record in touched.iter() {
        cursor.push(running);
        running += counts[record as usize];
    }
    diagonals.clear();
    diagonals.resize(hits.len(), 0);
    for &(record, diagonal) in hits.iter() {
        let s = slot[record as usize] as usize;
        diagonals[cursor[s] as usize] = diagonal;
        cursor[s] += 1;
    }

    let record_lens = index.record_lens();
    candidates.clear();
    for (s, &record) in touched.iter().enumerate() {
        let total = counts[record as usize];
        if total < params.min_coarse_hits {
            continue;
        }
        // cursor[s] advanced to the bucket end during the scatter.
        let end = cursor[s] as usize;
        let diags = &mut diagonals[end - total as usize..end];
        diags.sort_unstable();
        // Two-pointer max window.
        let mut best_count = 0usize;
        let mut best_lo = 0usize;
        let mut lo = 0usize;
        for hi in 0..diags.len() {
            while diags[hi] - diags[lo] > window {
                lo += 1;
            }
            if hi - lo + 1 > best_count {
                best_count = hi - lo + 1;
                best_lo = lo;
            }
        }
        let window_slice = &diags[best_lo..best_lo + best_count];
        let best_diagonal = window_slice[window_slice.len() / 2];

        let score = match params.ranking {
            RankingScheme::Count => total as f64,
            RankingScheme::Proportional => {
                total as f64 / (record_lens[record as usize].max(1) as f64)
            }
            RankingScheme::Frame { .. } => best_count as f64,
        };
        candidates.push(CoarseHit {
            record,
            score,
            hits: total,
            frame_hits: best_count as u32,
            best_diagonal,
        });
    }

    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("coarse scores are finite")
            .then(a.record.cmp(&b.record))
    });
    candidates.truncate(params.max_candidates);
    outcome.candidates.extend_from_slice(candidates);
    outcome.rank_nanos = rank_start.elapsed().as_nanos() as u64;
    Ok(outcome)
}

/// Count-based coarse ranking over a record-granularity index: the same
/// accumulation without diagonals (no offsets exist). Candidates carry
/// `best_diagonal = 0`; the engine compensates by running unbanded fine
/// alignment. Reads the query's code runs from `scratch.codes` (prepared
/// by [`coarse_rank_with`]).
fn coarse_rank_counts<S: PostingsSource>(
    index: &S,
    params: &SearchParams,
    scratch: &mut CoarseScratch,
    mut outcome: CoarseOutcome,
) -> Result<CoarseOutcome, IndexError> {
    let accumulator_limit = params.max_accumulators.unwrap_or(usize::MAX).max(1);
    scratch.begin(index.num_records() as usize);
    let CoarseScratch {
        generation,
        stamp,
        counts,
        slot,
        touched,
        codes,
        io_buf,
        candidates,
        ..
    } = scratch;
    let generation = *generation;
    let accumulate_start = std::time::Instant::now();
    let mut total_hits = 0u64;

    let mut run_start = 0usize;
    while run_start < codes.len() {
        let code = codes[run_start].0;
        let mut run_end = run_start;
        while run_end < codes.len() && codes[run_end].0 == code {
            run_end += 1;
        }
        let qpositions = (run_end - run_start) as u32;
        run_start = run_end;

        let fetched = index.fetch_counts_with(code, io_buf, &mut |record, count| {
            let r = record as usize;
            if stamp[r] != generation {
                if touched.len() >= accumulator_limit {
                    return;
                }
                stamp[r] = generation;
                counts[r] = 0;
                slot[r] = touched.len() as u32;
                touched.push(record);
            }
            let contribution = count * qpositions;
            counts[r] += contribution;
            total_hits += contribution as u64;
        })?;
        if let Some(df) = fetched {
            outcome.lists_fetched += 1;
            outcome.postings_decoded += df as u64;
        }
    }
    outcome.total_hits = total_hits;
    outcome.accumulate_nanos = accumulate_start.elapsed().as_nanos() as u64;
    let rank_start = std::time::Instant::now();

    let record_lens = index.record_lens();
    candidates.clear();
    for &record in touched.iter() {
        let total = counts[record as usize];
        if total < params.min_coarse_hits.max(1) {
            continue;
        }
        candidates.push(CoarseHit {
            record,
            score: match params.ranking {
                RankingScheme::Proportional => {
                    total as f64 / (record_lens[record as usize].max(1) as f64)
                }
                _ => total as f64,
            },
            hits: total,
            frame_hits: 0,
            best_diagonal: 0,
        });
    }
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("coarse scores are finite")
            .then(a.record.cmp(&b.record))
    });
    candidates.truncate(params.max_candidates);
    outcome.candidates.extend_from_slice(candidates);
    outcome.rank_nanos = rank_start.elapsed().as_nanos() as u64;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucdb_index::IndexBuilder;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn build(records: &[&[u8]], k: usize) -> CompressedIndex {
        let mut builder = IndexBuilder::new(IndexParams::new(k));
        for r in records {
            builder.add_record(&bases(r));
        }
        builder.finish()
    }

    fn params(ranking: RankingScheme) -> SearchParams {
        SearchParams {
            ranking,
            min_coarse_hits: 1,
            ..SearchParams::default()
        }
    }

    #[test]
    fn exact_copy_ranks_first() {
        let index = build(
            &[
                b"GGGGGGGGGGGGGGGGGGGGGGGG",
                b"TTTTACGTAGCTAGCTGGATCCTT", // contains the query
                b"CACACACACACACACACACACACA",
            ],
            8,
        );
        let query = bases(b"ACGTAGCTAGCTGGATCC");
        for ranking in [
            RankingScheme::Count,
            RankingScheme::Proportional,
            RankingScheme::Frame { window: 8 },
        ] {
            let outcome = coarse_rank(&index, &query, &params(ranking)).unwrap();
            assert!(!outcome.candidates.is_empty(), "{ranking:?}");
            assert_eq!(outcome.candidates[0].record, 1, "{ranking:?}");
        }
    }

    #[test]
    fn diagonal_is_recovered() {
        // Query matches record 0 at offset 6 → diagonal +6.
        let index = build(&[b"CCCCCCACGTAGCTAGCTGGATCCAAAA"], 8);
        let query = bases(b"ACGTAGCTAGCTGGATCC");
        let outcome =
            coarse_rank(&index, &query, &params(RankingScheme::Frame { window: 4 })).unwrap();
        assert_eq!(outcome.candidates.len(), 1);
        assert_eq!(outcome.candidates[0].best_diagonal, 6);
        // All hits of an exact embedded match share one diagonal.
        assert_eq!(outcome.candidates[0].frame_hits, outcome.candidates[0].hits);
    }

    #[test]
    fn frame_beats_count_on_scattered_hits() {
        // Record 0 shares many intervals with the query but scattered
        // (shuffled blocks); record 1 embeds a contiguous fragment.
        // Count ranks 0 first or equal; Frame must rank 1 first.
        let query = bases(b"AACCGGTTACGTAGCTTGCATGCAAACCGGTT");
        // Blocks of the query reordered and repeated: many hits, no
        // common diagonal.
        let scattered = b"TGCATGCAACGTAGCTAACCGGTTAACCGGTTAACCGGTT";
        let contiguous = b"TTTTTTACGTAGCTTGCATGCATTTTTTTTTT"; // one fragment
        let index = build(&[scattered, contiguous], 8);

        let frame =
            coarse_rank(&index, &query, &params(RankingScheme::Frame { window: 4 })).unwrap();
        assert_eq!(
            frame.candidates[0].record, 1,
            "frame should prefer the contiguous match"
        );

        let count = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(
            count.candidates[0].record, 0,
            "count should prefer the scattered record"
        );
    }

    #[test]
    fn proportional_corrects_length_bias() {
        // A short record with one shared interval vs a long record with
        // two: proportional prefers the short one, count the long one.
        let short = b"ACGTAGCTAGCT"; // 12 bases, hits once
        let mut long = b"ACGTAGCTAGCTACGTAGCTAGCT".to_vec(); // hits more
        long.extend(std::iter::repeat_n(b'G', 400));
        let index = build(&[short, &long], 12);
        let query = bases(b"ACGTAGCTAGCT");

        let count = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(count.candidates[0].record, 1);
        let prop = coarse_rank(&index, &query, &params(RankingScheme::Proportional)).unwrap();
        assert_eq!(prop.candidates[0].record, 0);
    }

    #[test]
    fn min_hits_filters_noise() {
        let index = build(&[b"ACGTAGCTTTTTTTTT", b"GGGGGGGGGGGGGGGG"], 8);
        let query = bases(b"ACGTAGCTAAAAAAAA"); // one shared interval with record 0
        let strict = SearchParams {
            min_coarse_hits: 2,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&index, &query, &strict).unwrap();
        assert!(outcome.candidates.is_empty());
        let lax = SearchParams {
            min_coarse_hits: 1,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&index, &query, &lax).unwrap();
        assert_eq!(outcome.candidates.len(), 1);
    }

    #[test]
    fn candidate_cutoff_respected() {
        let records: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let mut r = b"ACGTAGCTAGCTGGAT".to_vec();
                r.push(b"ACGT"[i % 4]);
                r
            })
            .collect();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let index = build(&refs, 8);
        let query = bases(b"ACGTAGCTAGCTGGAT");
        let p = SearchParams {
            max_candidates: 5,
            min_coarse_hits: 1,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&index, &query, &p).unwrap();
        assert_eq!(outcome.candidates.len(), 5);
        // Scores descend.
        for pair in outcome.candidates.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn short_query_yields_empty_outcome() {
        let index = build(&[b"ACGTACGTACGTACGT"], 8);
        let query = bases(b"ACGT"); // shorter than k
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(outcome.candidates.is_empty());
        assert_eq!(outcome.intervals_looked_up, 0);
    }

    #[test]
    fn query_stride_reduces_lookups() {
        let index = build(&[b"ACGTAGCTAGCTGGATCCTTACGGATCCAT"], 8);
        let query = bases(b"ACGTAGCTAGCTGGATCCTTACGGATCC");
        let all = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        let mut strided = params(RankingScheme::Count);
        strided.query_stride = 4;
        let sampled = coarse_rank(&index, &query, &strided).unwrap();
        assert!(sampled.intervals_looked_up < all.intervals_looked_up);
        assert!(sampled.intervals_looked_up >= all.intervals_looked_up / 6);
        // The exact embedded match still surfaces.
        assert_eq!(sampled.candidates[0].record, 0);
    }

    #[test]
    fn accumulator_limit_caps_tracked_records() {
        // 10 records share the query's interval; with a limit of 3 only
        // the first 3 can become candidates.
        let records: Vec<&[u8]> = vec![b"ACGTAGCTAGCTGGAT"; 10];
        let index = build(&records, 8);
        let query = bases(b"ACGTAGCTAGCTGGAT");
        let mut limited = params(RankingScheme::Count);
        limited.max_accumulators = Some(3);
        let outcome = coarse_rank(&index, &query, &limited).unwrap();
        assert_eq!(outcome.candidates.len(), 3);
        let ids: Vec<u32> = outcome.candidates.iter().map(|c| c.record).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Unlimited finds all ten.
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(outcome.candidates.len(), 10);
    }

    #[test]
    fn masking_suppresses_repeat_flood() {
        // Record 0 is a pure poly-A repeat; record 1 embeds the real
        // target. A query contaminated with poly-A floods unmasked
        // coarse search via record 0; masking removes the flood while
        // keeping the real match.
        let repeat_record = vec![b'A'; 400];
        let mut real = b"TGCCGTTGCA".to_vec();
        real.extend_from_slice(b"ACGTAGCTGGATCCTTACGGATCCAGGT");
        real.extend_from_slice(b"CCGGTTGGCC");
        let index = build(&[&repeat_record, &real], 8);

        let mut query_ascii = b"ACGTAGCTGGATCCTTACGGATCCAGGT".to_vec();
        query_ascii.extend(vec![b'A'; 120]); // contamination
        let query = bases(&query_ascii);

        let unmasked = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(
            unmasked.candidates.iter().any(|c| c.record == 0),
            "repeat record should flood the unmasked ranking"
        );

        let mut masked_params = params(RankingScheme::Count);
        masked_params.mask = Some(nucdb_seq::DustParams::default());
        let masked = coarse_rank(&index, &query, &masked_params).unwrap();
        assert!(masked.total_hits < unmasked.total_hits / 4);
        assert_eq!(
            masked.candidates[0].record, 1,
            "real target survives masking"
        );
        assert!(
            !masked.candidates.iter().any(|c| c.record == 0),
            "repeat record should vanish under masking"
        );
    }

    #[test]
    fn cost_counters_are_plausible() {
        let index = build(&[b"ACGTACGTACGTACGT", b"ACGTACGTACGTACGT"], 8);
        let query = bases(b"ACGTACGTACGT");
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(outcome.intervals_looked_up > 0);
        assert!(outcome.lists_fetched <= outcome.intervals_looked_up);
        assert!(outcome.total_hits >= outcome.postings_decoded);
    }
}
