//! Embeds the git commit hash into the build (`NUCDB_GIT_HASH`), with
//! an "unknown" fallback so builds from a tarball still compile.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|hash| !hash.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=NUCDB_GIT_HASH={hash}");
    // Re-embed when the checked-out commit moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/refs");
}
