//! Span trees: structured per-query timing with attached work counters.
//!
//! A [`SpanNode`] is one timed region of a query (a stage, a strand, a
//! fine-alignment candidate) carrying its duration, its offset from the
//! start of the query, a set of named work counters (postings bytes
//! read, ids decoded, blocks skipped, …) and child spans. A
//! [`QueryTrace`] is the complete forensic record of one query: the
//! request id the client saw, total wall time, result/error outcome, and
//! the root span. Both serialize to the crate's mini-JSON
//! ([`SpanNode::to_value`]) and parse back ([`SpanNode::from_value`]),
//! so the same shape flows through the JSONL trace log, the flight
//! recorder, the `/debug/*` endpoints, and `nucdb profile`.
//!
//! The tree exists so that *time is attributable to work*: a span's
//! **self time** ([`SpanNode::self_nanos`]) is its duration minus the
//! time covered by its children, which is what a profile aggregates —
//! summing raw durations would double-count every parent.

use crate::json::{num, Value};

/// One timed region of a query with its work counters and children.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanNode {
    /// Stage name, e.g. `"extract"`, `"fine"`, `"strand_merge"`. Profile
    /// aggregation groups spans by this name across queries and strands.
    pub name: String,
    /// Offset of this span's start from the start of the query, in
    /// nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration of this span, in nanoseconds.
    pub dur_ns: u64,
    /// Named work counters attributed to this span (not its children).
    /// Names beginning with `@` are **identity labels** (which record,
    /// which strand, what score) rather than work; profile aggregation
    /// excludes them from counter totals, where summing them would be
    /// meaningless.
    pub counters: Vec<(String, u64)>,
    /// Child spans, in execution order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf span with the given name, start offset, and duration.
    pub fn new(name: &str, start_ns: u64, dur_ns: u64) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            start_ns,
            dur_ns,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Attach a work counter (builder style).
    pub fn counter(mut self, key: &str, value: u64) -> SpanNode {
        self.counters.push((key.to_string(), value));
        self
    }

    /// Attach a child span (builder style).
    pub fn child(mut self, child: SpanNode) -> SpanNode {
        self.children.push(child);
        self
    }

    /// Duration not covered by child spans: `dur_ns` minus the sum of
    /// child durations, saturating at zero (children measured on a
    /// different clock read can overshoot the parent by a few ns).
    pub fn self_nanos(&self) -> u64 {
        let covered: u64 = self.children.iter().map(|c| c.dur_ns).sum();
        self.dur_ns.saturating_sub(covered)
    }

    /// Visit this span and every descendant, depth-first, parents before
    /// children.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a SpanNode)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }

    /// The span as a JSON object:
    /// `{"name":…,"start_ns":…,"dur_ns":…,"counters":{…},"children":[…]}`.
    /// Empty counter sets and child lists are omitted to keep trace
    /// lines compact.
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("start_ns".to_string(), num(self.start_ns)),
            ("dur_ns".to_string(), num(self.dur_ns)),
        ];
        if !self.counters.is_empty() {
            let counters = self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), num(*v)))
                .collect();
            members.push(("counters".to_string(), Value::Obj(counters)));
        }
        if !self.children.is_empty() {
            let children = self.children.iter().map(SpanNode::to_value).collect();
            members.push(("children".to_string(), Value::Arr(children)));
        }
        Value::Obj(members)
    }

    /// Parse a span produced by [`SpanNode::to_value`]. Returns `None`
    /// when the value is not a span-shaped object.
    pub fn from_value(value: &Value) -> Option<SpanNode> {
        let name = value.get("name")?.as_str()?.to_string();
        let start_ns = value.get("start_ns")?.as_f64()? as u64;
        let dur_ns = value.get("dur_ns")?.as_f64()? as u64;
        let mut counters = Vec::new();
        if let Some(Value::Obj(members)) = value.get("counters") {
            for (key, val) in members {
                counters.push((key.clone(), val.as_f64()? as u64));
            }
        }
        let mut children = Vec::new();
        if let Some(Value::Arr(items)) = value.get("children") {
            for item in items {
                children.push(SpanNode::from_value(item)?);
            }
        }
        Some(SpanNode {
            name,
            start_ns,
            dur_ns,
            counters,
            children,
        })
    }
}

/// The complete forensic record of one query: identity, outcome, and the
/// span tree. This is what the flight recorder stores, the slow-query
/// log emits, and `nucdb profile` aggregates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryTrace {
    /// The request id the client received (server queries) or was given
    /// by the caller (batch/CLI queries). Empty string when none.
    pub request_id: String,
    /// Total query wall time in nanoseconds.
    pub total_ns: u64,
    /// Number of results returned. Zero on error.
    pub results: u64,
    /// The error message, for queries that ended in error.
    pub error: Option<String>,
    /// Root of the span tree (name `"query"` by convention). A trace
    /// captured at error time may carry an empty root.
    pub root: SpanNode,
    /// The query's explain plan as a JSON object, when one was collected
    /// (the engine attaches plans to every capture while tail sampling is
    /// armed, so slow captures ship their own explanation).
    pub plan: Option<Value>,
}

impl QueryTrace {
    /// The trace as a JSON object. `error` is omitted for successful
    /// queries; `spans` is omitted when the root is empty (error traces
    /// captured before any stage ran).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            (
                "request_id".to_string(),
                Value::Str(self.request_id.clone()),
            ),
            ("total_ns".to_string(), num(self.total_ns)),
            ("results".to_string(), num(self.results)),
        ];
        if let Some(err) = &self.error {
            members.push(("error".to_string(), Value::Str(err.clone())));
        }
        if !self.root.name.is_empty() {
            members.push(("spans".to_string(), self.root.to_value()));
        }
        if let Some(plan) = &self.plan {
            members.push(("plan".to_string(), plan.clone()));
        }
        Value::Obj(members)
    }

    /// Parse a trace produced by [`QueryTrace::to_value`]. Tolerates
    /// extra fields (trace lines add `event`, flight entries add `seq`
    /// and `reason`), so the same parser serves every dump format.
    pub fn from_value(value: &Value) -> Option<QueryTrace> {
        let request_id = value
            .get("request_id")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let total_ns = value.get("total_ns")?.as_f64()? as u64;
        let results = value.get("results").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let error = value
            .get("error")
            .and_then(Value::as_str)
            .map(str::to_string);
        let root = match value.get("spans") {
            Some(spans) => SpanNode::from_value(spans)?,
            None => SpanNode::default(),
        };
        let plan = value.get("plan").cloned();
        Some(QueryTrace {
            request_id,
            total_ns,
            results,
            error,
            root,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> SpanNode {
        SpanNode::new("query", 0, 1000)
            .counter("candidates", 7)
            .child(
                SpanNode::new("coarse", 0, 600)
                    .counter("strand", 0)
                    .child(SpanNode::new("extract", 0, 100).counter("intervals_looked_up", 9))
                    .child(
                        SpanNode::new("accumulate", 100, 400)
                            .counter("postings_bytes_read", 2048)
                            .counter("ids_decoded", 512),
                    )
                    .child(SpanNode::new("rank", 500, 100)),
            )
            .child(SpanNode::new("fine", 600, 300).counter("alignments", 7))
            .child(SpanNode::new("strand_merge", 900, 50))
    }

    #[test]
    fn self_time_subtracts_children() {
        let tree = sample_tree();
        // 1000 - (600 + 300 + 50) = 50 self ns at the root.
        assert_eq!(tree.self_nanos(), 50);
        // coarse: 600 - (100 + 400 + 100) = 0.
        assert_eq!(tree.children[0].self_nanos(), 0);
        // Leaves own all their time.
        assert_eq!(tree.children[1].self_nanos(), 300);
    }

    #[test]
    fn self_time_saturates_when_children_overshoot() {
        let tree = SpanNode::new("query", 0, 10).child(SpanNode::new("stage", 0, 25));
        assert_eq!(tree.self_nanos(), 0);
    }

    #[test]
    fn json_round_trip_is_identity() {
        let tree = sample_tree();
        let rendered = tree.to_value().render();
        let parsed = SpanNode::from_value(&crate::json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, tree);
    }

    #[test]
    fn walk_visits_every_node_parent_first() {
        let tree = sample_tree();
        let mut names = Vec::new();
        tree.walk(&mut |span| names.push(span.name.as_str()));
        assert_eq!(
            names,
            [
                "query",
                "coarse",
                "extract",
                "accumulate",
                "rank",
                "fine",
                "strand_merge"
            ]
        );
    }

    #[test]
    fn query_trace_round_trip_with_and_without_error() {
        let ok = QueryTrace {
            request_id: "req-1".to_string(),
            total_ns: 1234,
            results: 3,
            error: None,
            root: sample_tree(),
            plan: None,
        };
        let rendered = ok.to_value().render();
        assert_eq!(
            QueryTrace::from_value(&crate::json::parse(&rendered).unwrap()).unwrap(),
            ok
        );

        let failed = QueryTrace {
            request_id: "req-2".to_string(),
            total_ns: 77,
            results: 0,
            error: Some("corruption: index toc".to_string()),
            root: SpanNode::default(),
            plan: None,
        };
        let rendered = failed.to_value().render();
        let parsed = QueryTrace::from_value(&crate::json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, failed);
        assert!(rendered.contains("\"error\""));
        assert!(!rendered.contains("\"spans\""));

        let explained = QueryTrace {
            plan: Some(Value::Obj(vec![(
                "query_len".to_string(),
                crate::json::num(12),
            )])),
            ..ok
        };
        let rendered = explained.to_value().render();
        let parsed = QueryTrace::from_value(&crate::json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, explained);
        assert!(rendered.contains("\"plan\""));
    }

    #[test]
    fn from_value_tolerates_extra_fields() {
        let line = r#"{"event":"query","seq":9,"reason":"slow","request_id":"r","total_ns":5,"results":1}"#;
        let parsed = QueryTrace::from_value(&crate::json::parse(line).unwrap()).unwrap();
        assert_eq!(parsed.request_id, "r");
        assert_eq!(parsed.total_ns, 5);
    }
}
