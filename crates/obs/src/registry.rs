//! The metrics registry: named counters, gauges and histograms.
//!
//! Registration and snapshotting take a `Mutex` — both are cold paths
//! (startup and scrape time). The handles handed out are `Arc`-backed
//! atomics: recording never locks, so any number of worker threads can
//! write concurrently (the `search_batch_parallel` case). Handles from a
//! [`MetricsRegistry::disabled`] registry carry no storage at all, making
//! the disabled mode provably free: one `Option` discriminant branch.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramCore, HistogramSnapshot};

/// A monotonically increasing event counter (resettable between
/// experiment runs via [`Counter::reset`]).
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A standalone enabled counter (not tied to any registry).
    pub fn new() -> Counter {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A no-op counter: every operation is one branch.
    pub fn disabled() -> Counter {
        Counter(None)
    }

    /// Does this handle record anywhere?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }

    /// Reset to zero (between experiment runs).
    pub fn reset(&self) {
        if let Some(cell) = &self.0 {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A current-level value (candidates in flight, open files, …).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A standalone enabled gauge.
    pub fn new() -> Gauge {
        Gauge(Some(Arc::new(AtomicI64::new(0))))
    }

    /// A no-op gauge.
    pub fn disabled() -> Gauge {
        Gauge(None)
    }

    /// Does this handle record anywhere?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Set the level.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current level (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// What kind of metric a registration is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Current level.
    Gauge,
    /// Value distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` name.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Instrument {
    fn kind(&self) -> MetricKind {
        match self {
            Instrument::Counter(_) => MetricKind::Counter,
            Instrument::Gauge(_) => MetricKind::Gauge,
            Instrument::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Registration {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// Is `name` a legal Prometheus metric name?
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// The registry. See the [crate docs](crate) for the cost model.
pub struct MetricsRegistry {
    /// `None` for a disabled registry.
    inner: Option<Mutex<Vec<Registration>>>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Some(Mutex::new(Vec::new())),
        }
    }

    /// A disabled registry: every handle it returns is a no-op and its
    /// snapshot is empty.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry { inner: None }
    }

    /// Does this registry record anything?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or look up) a counter. Re-registering the same
    /// name/labels returns a handle to the same storage.
    ///
    /// # Panics
    /// On an invalid metric name, or if the name/labels are already
    /// registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// [`MetricsRegistry::counter`] with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter) {
            Some(Instrument::Counter(cell)) => Counter(Some(cell)),
            Some(_) => unreachable!("register checked the kind"),
            None => Counter::disabled(),
        }
    }

    /// Register (or look up) a gauge.
    ///
    /// # Panics
    /// On an invalid metric name or kind mismatch (see
    /// [`MetricsRegistry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// [`MetricsRegistry::gauge`] with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge) {
            Some(Instrument::Gauge(cell)) => Gauge(Some(cell)),
            Some(_) => unreachable!("register checked the kind"),
            None => Gauge::disabled(),
        }
    }

    /// Register (or look up) a histogram.
    ///
    /// # Panics
    /// On an invalid metric name or kind mismatch (see
    /// [`MetricsRegistry::counter`]).
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// [`MetricsRegistry::histogram`] with labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, help, labels, MetricKind::Histogram) {
            Some(Instrument::Histogram(core)) => Histogram(Some(core)),
            Some(_) => unreachable!("register checked the kind"),
            None => Histogram::disabled(),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
    ) -> Option<Instrument> {
        let inner = self.inner.as_ref()?;
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        for (key, _) in &labels {
            assert!(valid_metric_name(key), "invalid label name {key:?}");
        }
        let mut registrations = inner.lock().expect("metrics registry poisoned");
        if let Some(existing) = registrations
            .iter()
            .find(|r| r.name == name && r.labels == labels)
        {
            assert_eq!(
                existing.instrument.kind(),
                kind,
                "metric {name:?} already registered as a {}",
                existing.instrument.kind().name()
            );
            return Some(match &existing.instrument {
                Instrument::Counter(cell) => Instrument::Counter(Arc::clone(cell)),
                Instrument::Gauge(cell) => Instrument::Gauge(Arc::clone(cell)),
                Instrument::Histogram(core) => Instrument::Histogram(Arc::clone(core)),
            });
        }
        let instrument = match kind {
            MetricKind::Counter => Instrument::Counter(Arc::new(AtomicU64::new(0))),
            MetricKind::Gauge => Instrument::Gauge(Arc::new(AtomicI64::new(0))),
            MetricKind::Histogram => {
                let Histogram(core) = Histogram::new();
                Instrument::Histogram(core.expect("Histogram::new is enabled"))
            }
        };
        let handle = match &instrument {
            Instrument::Counter(cell) => Instrument::Counter(Arc::clone(cell)),
            Instrument::Gauge(cell) => Instrument::Gauge(Arc::clone(cell)),
            Instrument::Histogram(core) => Instrument::Histogram(Arc::clone(core)),
        };
        registrations.push(Registration {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument,
        });
        Some(handle)
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// then labels (stable exposition order). Empty for a disabled
    /// registry.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = self.inner.as_ref() else {
            return Snapshot {
                metrics: Vec::new(),
            };
        };
        let registrations = inner.lock().expect("metrics registry poisoned");
        let mut metrics: Vec<MetricSnapshot> = registrations
            .iter()
            .map(|r| MetricSnapshot {
                name: r.name.clone(),
                help: r.help.clone(),
                labels: r.labels.clone(),
                value: match &r.instrument {
                    Instrument::Counter(cell) => {
                        ValueSnapshot::Counter(cell.load(Ordering::Relaxed))
                    }
                    Instrument::Gauge(cell) => ValueSnapshot::Gauge(cell.load(Ordering::Relaxed)),
                    Instrument::Histogram(core) => ValueSnapshot::Histogram(core.snapshot()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        Snapshot { metrics }
    }
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .field("metrics", &self.snapshot().metrics.len())
            .finish()
    }
}

/// One metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (Prometheus charset).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: ValueSnapshot,
}

/// The captured value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All metrics, sorted by name then labels.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Activity since `earlier`: counters and histogram buckets
    /// subtract (saturating); gauges keep their current level. Metrics
    /// absent from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let before = earlier
                    .metrics
                    .iter()
                    .find(|e| e.name == m.name && e.labels == m.labels);
                let value = match (&m.value, before.map(|b| &b.value)) {
                    (ValueSnapshot::Counter(now), Some(ValueSnapshot::Counter(then))) => {
                        ValueSnapshot::Counter(now.saturating_sub(*then))
                    }
                    (ValueSnapshot::Histogram(now), Some(ValueSnapshot::Histogram(then))) => {
                        ValueSnapshot::Histogram(now.delta(then))
                    }
                    (value, _) => value.clone(),
                };
                MetricSnapshot {
                    name: m.name.clone(),
                    help: m.help.clone(),
                    labels: m.labels.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { metrics }
    }

    /// Look up a metric by name (and no labels).
    pub fn get(&self, name: &str) -> Option<&ValueSnapshot> {
        self.get_with(name, &[])
    }

    /// Look up a metric by name and exact label set.
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&ValueSnapshot> {
        self.metrics
            .iter()
            .find(|m| {
                m.name == name
                    && m.labels.len() == labels.len()
                    && m.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), &(lk, lv))| k == lk && v == lv)
            })
            .map(|m| &m.value)
    }
}

/// Escape a `# HELP` text: backslash and newline.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double-quote, newline.
fn escape_label_value(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Render in the Prometheus text exposition format (version 0.0.4):
    /// one `# HELP` / `# TYPE` header per metric family followed by its
    /// samples; histograms expose cumulative `_bucket{le="…"}` series
    /// plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for metric in &self.metrics {
            if last_family != Some(metric.name.as_str()) {
                let kind = match metric.value {
                    ValueSnapshot::Counter(_) => MetricKind::Counter,
                    ValueSnapshot::Gauge(_) => MetricKind::Gauge,
                    ValueSnapshot::Histogram(_) => MetricKind::Histogram,
                };
                let _ = writeln!(out, "# HELP {} {}", metric.name, escape_help(&metric.help));
                let _ = writeln!(out, "# TYPE {} {}", metric.name, kind.name());
                last_family = Some(metric.name.as_str());
            }
            match &metric.value {
                ValueSnapshot::Counter(v) => {
                    let labels = render_labels(&metric.labels, None);
                    let _ = writeln!(out, "{}{labels} {v}", metric.name);
                }
                ValueSnapshot::Gauge(v) => {
                    let labels = render_labels(&metric.labels, None);
                    let _ = writeln!(out, "{}{labels} {v}", metric.name);
                }
                ValueSnapshot::Histogram(hist) => {
                    for (upper, cumulative) in hist.cumulative_buckets() {
                        let le = if upper == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            upper.to_string()
                        };
                        let labels = render_labels(&metric.labels, Some(("le", &le)));
                        let _ = writeln!(out, "{}_bucket{labels} {cumulative}", metric.name);
                    }
                    let labels = render_labels(&metric.labels, None);
                    let _ = writeln!(out, "{}_sum{labels} {}", metric.name, hist.sum);
                    let _ = writeln!(out, "{}_count{labels} {}", metric.name, hist.count());
                }
            }
        }
        out
    }

    /// Render as a JSON document (see [`crate::json`]): an object with a
    /// `"metrics"` array; histograms carry count/sum/max, percentiles,
    /// and sparse `[upper_bound, cumulative_count]` bucket pairs (the
    /// final bucket's bound is `null`, meaning +Inf).
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::{num, Value};
        let metrics = self
            .metrics
            .iter()
            .map(|metric| {
                let mut members = vec![
                    ("name".to_string(), Value::Str(metric.name.clone())),
                    ("help".to_string(), Value::Str(metric.help.clone())),
                ];
                if !metric.labels.is_empty() {
                    members.push((
                        "labels".to_string(),
                        Value::Obj(
                            metric
                                .labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                .collect(),
                        ),
                    ));
                }
                match &metric.value {
                    ValueSnapshot::Counter(v) => {
                        members.push(("type".to_string(), Value::Str("counter".to_string())));
                        members.push(("value".to_string(), num(*v)));
                    }
                    ValueSnapshot::Gauge(v) => {
                        members.push(("type".to_string(), Value::Str("gauge".to_string())));
                        members.push(("value".to_string(), Value::Num(*v as f64)));
                    }
                    ValueSnapshot::Histogram(hist) => {
                        members.push(("type".to_string(), Value::Str("histogram".to_string())));
                        members.push(("count".to_string(), num(hist.count())));
                        members.push(("sum".to_string(), num(hist.sum)));
                        members.push(("max".to_string(), num(hist.max)));
                        members.push(("p50".to_string(), num(hist.p50())));
                        members.push(("p90".to_string(), num(hist.p90())));
                        members.push(("p99".to_string(), num(hist.p99())));
                        let buckets = hist
                            .cumulative_buckets()
                            .into_iter()
                            .map(|(upper, cumulative)| {
                                let bound = if upper == u64::MAX {
                                    Value::Null
                                } else {
                                    num(upper)
                                };
                                Value::Arr(vec![bound, num(cumulative)])
                            })
                            .collect();
                        members.push(("buckets".to_string(), Value::Arr(buckets)));
                    }
                }
                Value::Obj(members)
            })
            .collect();
        Value::Obj(vec![("metrics".to_string(), Value::Arr(metrics))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("events_total", "events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = registry.gauge("level", "level");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn reregistration_shares_storage() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("shared_total", "x");
        let b = registry.counter("shared_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Different labels are a different series.
        let c = registry.counter_with("shared_total", "x", &[("shard", "1")]);
        c.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("thing", "x");
        let _ = registry.gauge("thing", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("bad name", "x");
    }

    #[test]
    fn disabled_registry_is_inert() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_enabled());
        let c = registry.counter("x_total", "x");
        let g = registry.gauge("g", "g");
        let h = registry.histogram("h_ns", "h");
        c.add(5);
        g.set(5);
        h.record(5);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        assert!(registry.snapshot().metrics.is_empty());
    }

    #[test]
    fn snapshot_and_delta() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("ops_total", "ops");
        let h = registry.histogram("lat_ns", "latency");
        let g = registry.gauge("level", "level");
        c.add(3);
        h.record(100);
        g.set(9);
        let before = registry.snapshot();
        c.add(2);
        h.record(200);
        g.set(4);
        let after = registry.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.get("ops_total"), Some(&ValueSnapshot::Counter(2)));
        assert_eq!(delta.get("level"), Some(&ValueSnapshot::Gauge(4)));
        let Some(ValueSnapshot::Histogram(hist)) = delta.get("lat_ns") else {
            panic!("histogram missing from delta");
        };
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum, 200);
    }

    #[test]
    fn snapshot_order_is_stable() {
        let registry = MetricsRegistry::new();
        registry.counter("zzz_total", "z").inc();
        registry.counter("aaa_total", "a").inc();
        registry.counter_with("mid_total", "m", &[("b", "2")]).inc();
        registry.counter_with("mid_total", "m", &[("b", "1")]).inc();
        let names: Vec<String> = registry
            .snapshot()
            .metrics
            .iter()
            .map(|m| format!("{}{:?}", m.name, m.labels))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("hits_total", "hits");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    /// Build a snapshot exercising every metric kind, labels that need
    /// escaping, and a populated histogram.
    fn exposition_fixture() -> Snapshot {
        let registry = MetricsRegistry::new();
        registry
            .counter(
                "nucdb_reads_total",
                "Reads with a \\ and\na newline in help",
            )
            .add(2);
        registry
            .counter_with("nucdb_reads_total", "Reads", &[("path", "a\\b\"c\nd")])
            .add(7);
        registry.gauge("nucdb_level", "Level").set(-3);
        let h = registry.histogram("nucdb_lat_ns", "Latency");
        for v in [1u64, 5, 5, 100, 10_000] {
            h.record(v);
        }
        registry.snapshot()
    }

    /// Prometheus text format conformance: every line is a well-formed
    /// comment or sample, HELP/TYPE appear exactly once per family and
    /// before that family's samples, label escaping is applied, and
    /// histogram buckets are cumulative and end at +Inf == count.
    #[test]
    fn prometheus_exposition_conforms() {
        let text = exposition_fixture().to_prometheus();
        let mut seen_type: Vec<&str> = Vec::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.splitn(3, ' ');
                let keyword = parts.next().unwrap();
                let family = parts.next().expect("family name after keyword");
                assert!(
                    keyword == "HELP" || keyword == "TYPE",
                    "unknown comment keyword in {line:?}"
                );
                if keyword == "TYPE" {
                    let kind = parts.next().expect("kind after TYPE");
                    assert!(matches!(kind, "counter" | "gauge" | "histogram"));
                    assert!(!seen_type.contains(&family), "duplicate TYPE for {family}");
                    seen_type.push(family);
                }
            } else {
                // Sample line: name[{labels}] value
                let (series, value) = line.rsplit_once(' ').expect("sample has a value");
                value.parse::<f64>().expect("sample value is a number");
                let name = series.split('{').next().unwrap();
                let family = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .filter(|f| seen_type.contains(f))
                    .unwrap_or(name);
                assert!(
                    seen_type.contains(&family),
                    "sample {name} before its TYPE line"
                );
            }
        }
        // HELP text and label values are escaped.
        assert!(text.contains("Reads with a \\\\ and\\na newline"));
        assert!(text.contains(r#"path="a\\b\"c\nd""#));
        // Histogram buckets: cumulative, non-decreasing, +Inf == count.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("nucdb_lat_ns_bucket"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(!buckets.is_empty());
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        let last_bucket_line = text
            .lines()
            .rfind(|l| l.starts_with("nucdb_lat_ns_bucket"))
            .unwrap();
        assert!(last_bucket_line.contains(r#"le="+Inf""#));
        assert_eq!(*buckets.last().unwrap(), 5);
        assert!(text.contains("nucdb_lat_ns_count 5"));
        assert!(text.contains("nucdb_lat_ns_sum 10111"));
    }

    /// The JSON exposition round-trips through the crate's own parser:
    /// parse(render(v)) == v, and the re-rendered text is stable.
    #[test]
    fn json_exposition_round_trips() {
        let value = exposition_fixture().to_json();
        let text = value.render();
        let reparsed = crate::json::parse(&text).expect("exposition JSON parses");
        assert_eq!(reparsed, value);
        assert_eq!(reparsed.render(), text);
        // Spot-check structure.
        let metrics = match value.get("metrics") {
            Some(crate::json::Value::Arr(items)) => items,
            other => panic!("metrics array missing: {other:?}"),
        };
        assert_eq!(metrics.len(), 4);
        let hist = metrics
            .iter()
            .find(|m| m.get("type").and_then(|t| t.as_str()) == Some("histogram"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(hist.get("max").and_then(|v| v.as_f64()), Some(10_000.0));
    }
}
