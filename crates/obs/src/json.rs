//! A minimal JSON value type with a writer and a strict parser.
//!
//! The workspace is intentionally dependency-free, so the JSON
//! exposition format ([`crate::Snapshot::to_json`]) and the JSONL trace
//! sink ([`crate::TraceSink`]) serialize through this module instead of
//! `serde_json`. The parser exists so tests can assert the emitted JSON
//! round-trips structurally; it accepts exactly RFC 8259 documents
//! (no comments, no trailing commas, no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON document node. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Stored as `f64`; integers up to 2^53 survive exactly,
    /// which covers every count this crate emits in practice (larger
    /// values round, as they would in any JSON consumer).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// Convenience: build a [`Value::Num`] from any integer-ish count.
pub fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

fn write_number(n: f64, out: &mut String) {
    // JSON has no NaN/Infinity; map them to null like serde_json's
    // lossy modes would reject — here we choose the defensive rendering.
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
            // Render integral values without an exponent or ".0" so the
            // output looks like the integers they are.
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a description of the first error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a leading surrogate must be
                            // followed by \uXXXX with a trailing surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid surrogate pair".to_string());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or("invalid \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte at {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(slice).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("invalid number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("invalid fraction at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("invalid exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1", "3.5", "1e3", "\"hi\""] {
            let value = parse(text).unwrap();
            assert_eq!(parse(&value.render()).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":"e\nf","g":[true,false]}}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.render(), text);
        assert_eq!(parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn string_escapes() {
        let value = Value::Str("a\"b\\c\nd\u{1}e".to_string());
        let rendered = value.render();
        assert_eq!(rendered, r#""a\"b\\c\nd\u0001e""#);
        assert_eq!(parse(&rendered).unwrap(), value);
    }

    #[test]
    fn unicode_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".to_string()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".to_string()));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,]", "{\"a\":}", "01", "1.", "nul", "\"a", "[]x"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Value::Num(5.0).render(), "5");
        assert_eq!(num(12345).render(), "12345");
        assert_eq!(Value::Num(0.5).render(), "0.5");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn accessors() {
        let value = parse(r#"{"name":"x","count":3}"#).unwrap();
        assert_eq!(value.get("name").and_then(Value::as_str), Some("x"));
        assert_eq!(value.get("count").and_then(Value::as_f64), Some(3.0));
        assert_eq!(value.get("missing"), None);
    }
}
