//! Sampled structured query logging (JSONL).
//!
//! A [`TraceSink`] appends one JSON object per event to a writer —
//! typically a file passed via the CLI's `--trace <path>`. Events carry
//! whatever fields the caller attaches (stage timings, counter deltas,
//! candidate counts). Sampling is decided *before* an event is built
//! ([`TraceSink::should_sample`]), so unsampled queries pay one atomic
//! increment and skip all formatting work.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Value;

/// One structured trace event: an ordered set of named JSON fields,
/// serialized as a single JSONL line by [`TraceSink::emit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    fields: Vec<(String, Value)>,
}

impl TraceEvent {
    /// Start an event of the given kind (recorded as an `"event"` field).
    pub fn new(kind: &str) -> TraceEvent {
        TraceEvent {
            fields: vec![("event".to_string(), Value::Str(kind.to_string()))],
        }
    }

    /// Attach an arbitrary JSON field.
    pub fn field(mut self, key: &str, value: Value) -> TraceEvent {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Attach an unsigned integer field.
    pub fn num(self, key: &str, value: u64) -> TraceEvent {
        self.field(key, crate::json::num(value))
    }

    /// Attach a string field.
    pub fn str(self, key: &str, value: &str) -> TraceEvent {
        self.field(key, Value::Str(value.to_string()))
    }

    /// The event as a JSON object.
    pub fn to_value(&self) -> Value {
        Value::Obj(self.fields.clone())
    }
}

struct SinkCore {
    writer: Mutex<Box<dyn Write + Send>>,
    /// Emit every Nth query (1 = every query).
    sample_every: u64,
    seq: AtomicU64,
    /// Events lost to write errors (`nucdb_trace_dropped_total` once
    /// bound via [`TraceSink::bind_dropped`]); counted locally too so
    /// drops are observable before any registry is attached.
    dropped: AtomicU64,
    dropped_counter: Mutex<crate::registry::Counter>,
    /// Rotation tally, present only for sinks built with
    /// [`TraceSink::to_rotating_file`] (shared with the writer).
    rotations: Option<Arc<RotationStats>>,
}

/// Rotation tally shared between a [`RotatingWriter`] and its
/// [`TraceSink`], following the same local-count + late-bindable-counter
/// pattern as dropped events.
struct RotationStats {
    count: AtomicU64,
    counter: Mutex<crate::registry::Counter>,
}

/// Append-only writer with size-capped rotation: once the current file
/// exceeds `max_bytes` (checked at line boundaries, so no line is ever
/// split across files), it is renamed to `<path>.1` — replacing any
/// previous rotation — and a fresh file is started at `path`. Disk usage
/// is therefore bounded by roughly `2 × max_bytes` plus one line.
struct RotatingWriter {
    path: std::path::PathBuf,
    max_bytes: u64,
    written: u64,
    file: io::BufWriter<std::fs::File>,
    stats: Arc<RotationStats>,
}

/// The `<path>.1` sibling a rotation renames the full file to.
fn rotated_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".1");
    std::path::PathBuf::from(name)
}

impl RotatingWriter {
    fn rotate(&mut self) -> io::Result<()> {
        self.file.flush()?;
        std::fs::rename(&self.path, rotated_path(&self.path))?;
        self.file = io::BufWriter::new(std::fs::File::create(&self.path)?);
        self.written = 0;
        self.stats.count.fetch_add(1, Ordering::Relaxed);
        recover(self.stats.counter.lock()).inc();
        Ok(())
    }
}

impl Write for RotatingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.file.write(buf)?;
        self.written += n as u64;
        // Rotate only when the write ends a line, so the cap never tears
        // a JSONL record in half.
        if self.written >= self.max_bytes && buf[..n].last() == Some(&b'\n') {
            self.rotate()?;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

/// Recover a possibly-poisoned lock: a panic on another traced thread
/// must not cascade into every subsequent query. The guarded state is a
/// byte stream / counter, both safe to keep using after an interrupted
/// writer (worst case: one torn line in a diagnostic log).
fn recover<T>(result: std::sync::LockResult<T>) -> T {
    result.unwrap_or_else(|poison| poison.into_inner())
}

/// A shared handle to a JSONL trace stream. Cloning is cheap; all clones
/// append to the same writer and share the sampling sequence. The
/// disabled sink ([`TraceSink::disabled`]) holds no writer: every call
/// is one branch.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkCore>>,
}

impl TraceSink {
    /// A sink writing to `writer`, emitting every `sample_every`-th
    /// sampled event (values below 1 are treated as 1: no sampling).
    pub fn to_writer(writer: Box<dyn Write + Send>, sample_every: u64) -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkCore {
                writer: Mutex::new(writer),
                sample_every: sample_every.max(1),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                dropped_counter: Mutex::new(crate::registry::Counter::disabled()),
                rotations: None,
            })),
        }
    }

    /// A sink appending to the file at `path` (created/truncated).
    pub fn to_file(path: &Path, sample_every: u64) -> io::Result<TraceSink> {
        let file = std::fs::File::create(path)?;
        Ok(TraceSink::to_writer(
            Box::new(io::BufWriter::new(file)),
            sample_every,
        ))
    }

    /// Like [`TraceSink::to_file`], but with size-capped rotation: once
    /// the file exceeds `max_bytes` it is renamed to `<path>.1` (keeping
    /// exactly one predecessor) and a fresh file is started, so a
    /// long-running process cannot grow the log without bound. Rotations
    /// are counted ([`TraceSink::rotations`], bindable to a registry
    /// counter via [`TraceSink::bind_rotations`]).
    pub fn to_rotating_file(
        path: &Path,
        sample_every: u64,
        max_bytes: u64,
    ) -> io::Result<TraceSink> {
        let stats = Arc::new(RotationStats {
            count: AtomicU64::new(0),
            counter: Mutex::new(crate::registry::Counter::disabled()),
        });
        let writer = RotatingWriter {
            path: path.to_path_buf(),
            max_bytes: max_bytes.max(1),
            written: 0,
            file: io::BufWriter::new(std::fs::File::create(path)?),
            stats: Arc::clone(&stats),
        };
        Ok(TraceSink {
            inner: Some(Arc::new(SinkCore {
                writer: Mutex::new(Box::new(writer)),
                sample_every: sample_every.max(1),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                dropped_counter: Mutex::new(crate::registry::Counter::disabled()),
                rotations: Some(stats),
            })),
        })
    }

    /// A no-op sink.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// Does this sink write anywhere?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Should the caller record (and later [`TraceSink::emit`]) the
    /// current query? Advances the sampling sequence; returns `true` for
    /// every `sample_every`-th call, starting with the first. Always
    /// `false` on a disabled sink.
    #[inline]
    pub fn should_sample(&self) -> bool {
        match &self.inner {
            Some(core) => core.seq.fetch_add(1, Ordering::Relaxed) % core.sample_every == 0,
            None => false,
        }
    }

    /// Append `event` as one JSONL line. Ignored on a disabled sink.
    /// Write errors never fail a query: the event is dropped and the
    /// drop counter bumped instead. A lock poisoned by a panicking
    /// emitter is recovered, not propagated.
    pub fn emit(&self, event: &TraceEvent) {
        self.emit_value(&event.to_value());
    }

    /// Append an already-built JSON value as one JSONL line, with the
    /// same error policy as [`TraceSink::emit`].
    pub fn emit_value(&self, value: &Value) {
        if let Some(core) = &self.inner {
            let line = value.render();
            let mut writer = recover(core.writer.lock());
            let ok = writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_ok();
            if !ok {
                core.dropped.fetch_add(1, Ordering::Relaxed);
                recover(core.dropped_counter.lock()).inc();
            }
        }
    }

    /// Bind the registry counter bumped when events are dropped
    /// (conventionally `nucdb_trace_dropped_total`). Drops that happened
    /// before binding are carried over so the counter never undercounts.
    pub fn bind_dropped(&self, counter: crate::registry::Counter) {
        if let Some(core) = &self.inner {
            let already = core.dropped.load(Ordering::Relaxed);
            counter.add(already.saturating_sub(counter.get()));
            *recover(core.dropped_counter.lock()) = counter;
        }
    }

    /// Events lost to write errors so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |core| core.dropped.load(Ordering::Relaxed))
    }

    /// File rotations performed so far (always 0 for non-rotating sinks).
    pub fn rotations(&self) -> u64 {
        self.inner
            .as_ref()
            .and_then(|core| core.rotations.as_ref())
            .map_or(0, |stats| stats.count.load(Ordering::Relaxed))
    }

    /// Bind the registry counter bumped on each rotation (conventionally
    /// `nucdb_slow_log_rotations_total`). Rotations that happened before
    /// binding are carried over. No-op on non-rotating sinks.
    pub fn bind_rotations(&self, counter: crate::registry::Counter) {
        if let Some(stats) = self.inner.as_ref().and_then(|core| core.rotations.as_ref()) {
            let already = stats.count.load(Ordering::Relaxed);
            counter.add(already.saturating_sub(counter.get()));
            *recover(stats.counter.lock()) = counter;
        }
    }

    /// Flush the underlying writer. Flush errors count as drops.
    pub fn flush(&self) {
        if let Some(core) = &self.inner {
            if recover(core.writer.lock()).flush().is_err() {
                core.dropped.fetch_add(1, Ordering::Relaxed);
                recover(core.dropped_counter.lock()).inc();
            }
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that appends into a shared buffer we can inspect later.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn shared_sink(sample_every: u64) -> (TraceSink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = TraceSink::to_writer(Box::new(SharedBuf(Arc::clone(&buf))), sample_every);
        (sink, buf)
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert!(!sink.should_sample());
        sink.emit(&TraceEvent::new("query").num("n", 1));
        sink.flush();
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let (sink, buf) = shared_sink(1);
        for i in 0..3u64 {
            assert!(sink.should_sample());
            sink.emit(
                &TraceEvent::new("query")
                    .num("seq", i)
                    .str("family", "alu")
                    .field("nested", Value::Arr(vec![crate::json::num(i)])),
            );
        }
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let value = crate::json::parse(line).expect("line parses");
            assert_eq!(value.get("event").and_then(Value::as_str), Some("query"));
            assert_eq!(value.get("seq").and_then(Value::as_f64), Some(i as f64));
        }
    }

    #[test]
    fn sampling_emits_every_nth() {
        let (sink, buf) = shared_sink(3);
        let mut sampled = 0;
        for i in 0..10u64 {
            if sink.should_sample() {
                sampled += 1;
                sink.emit(&TraceEvent::new("query").num("i", i));
            }
        }
        sink.flush();
        // Calls 0, 3, 6, 9 are sampled.
        assert_eq!(sampled, 4);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
    }

    /// A writer that panics on the first write, then works normally.
    struct PanicOnce {
        armed: bool,
        out: SharedBuf,
    }

    impl Write for PanicOnce {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.armed {
                self.armed = false;
                panic!("injected writer panic");
            }
            self.out.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn poisoned_writer_lock_is_recovered_not_propagated() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = TraceSink::to_writer(
            Box::new(PanicOnce {
                armed: true,
                out: SharedBuf(Arc::clone(&buf)),
            }),
            1,
        );
        // First emit panics inside the writer while the lock is held,
        // poisoning it.
        let panicking = sink.clone();
        let result = std::thread::spawn(move || {
            panicking.emit(&TraceEvent::new("query").num("n", 0));
        })
        .join();
        assert!(
            result.is_err(),
            "writer panic should propagate to its thread"
        );

        // Subsequent emits on other threads must keep working.
        sink.emit(&TraceEvent::new("query").num("n", 1));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        crate::json::parse(text.lines().next().unwrap()).expect("valid line after recovery");
    }

    /// A writer that always fails.
    struct BrokenPipe;

    impl Write for BrokenPipe {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
        }
    }

    #[test]
    fn write_errors_drop_events_and_bump_counter() {
        let sink = TraceSink::to_writer(Box::new(BrokenPipe), 1);
        sink.emit(&TraceEvent::new("query").num("n", 0));
        assert_eq!(sink.dropped(), 1);

        // Binding late carries over drops that already happened.
        let counter = crate::registry::Counter::new();
        sink.bind_dropped(counter.clone());
        assert_eq!(counter.get(), 1);

        sink.emit(&TraceEvent::new("query").num("n", 1));
        sink.flush();
        assert_eq!(sink.dropped(), 3); // 2 write errors + 1 flush error
        assert_eq!(counter.get(), 3);
    }

    #[test]
    fn rotating_sink_caps_size_and_keeps_one_predecessor() {
        let dir = std::env::temp_dir().join(format!("nucdb_rot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slow.jsonl");
        let sink = TraceSink::to_rotating_file(&path, 1, 200).unwrap();

        // Each line is ~40 bytes; 30 lines must rotate more than once.
        for i in 0..30u64 {
            sink.emit(&TraceEvent::new("query").num("seq", i).str("pad", "xxxx"));
        }
        sink.flush();
        assert!(sink.rotations() >= 2, "rotations: {}", sink.rotations());

        // Late binding carries the count over.
        let counter = crate::registry::Counter::new();
        sink.bind_rotations(counter.clone());
        assert_eq!(counter.get(), sink.rotations());

        // Both generations exist, are size-capped (one line of overshoot
        // allowed), and contain only whole JSONL lines.
        let rotated = super::rotated_path(&path);
        for file in [&path, &rotated] {
            let text = std::fs::read_to_string(file).unwrap();
            assert!(text.len() < 300, "{}: {} bytes", file.display(), text.len());
            for line in text.lines() {
                crate::json::parse(line).expect("whole line");
            }
        }
        // Every line landed in some generation: sequence numbers in the
        // rotated file strictly precede those in the live file.
        let last_rotated = std::fs::read_to_string(&rotated)
            .unwrap()
            .lines()
            .last()
            .map(|l| crate::json::parse(l).unwrap().get("seq").unwrap().as_f64())
            .unwrap()
            .unwrap();
        let first_live = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .next()
            .map(|l| crate::json::parse(l).unwrap().get("seq").unwrap().as_f64())
            .unwrap()
            .unwrap();
        assert!(last_rotated < first_live);
        assert_eq!(sink.dropped(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_rotating_sink_reports_zero_rotations() {
        let (sink, _) = shared_sink(1);
        assert_eq!(sink.rotations(), 0);
        sink.bind_rotations(crate::registry::Counter::new());
    }

    #[test]
    fn concurrent_emitters_produce_whole_lines() {
        let (sink, buf) = shared_sink(1);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        sink.should_sample();
                        sink.emit(&TraceEvent::new("query").num("id", t * 1000 + i));
                    }
                });
            }
        });
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 200);
        for line in text.lines() {
            crate::json::parse(line).expect("every line is valid JSON");
        }
    }
}
