//! Flight recorder and tail sampling: the last N query traces, always.
//!
//! The stride-sampled [`TraceSink`](crate::TraceSink) answers "what does
//! a typical query look like" — but the queries worth debugging are
//! precisely the ones a 1-in-K stride skips. This module holds the other
//! half of the forensics story:
//!
//! * [`FlightRecorder`] — a fixed-capacity ring of the most recent
//!   completed [`QueryTrace`]s. A writer reserves a slot with one atomic
//!   fetch-add on the cursor and takes only that slot's lock, so
//!   concurrent recorders never serialize against each other (two
//!   writers contend only when they land on the same slot, i.e. one
//!   full capacity apart). Memory is strictly bounded: `capacity`
//!   entries, each a span tree whose size the engine bounds (fine-stage
//!   candidate spans are capped), so a 256-entry ring stays in the
//!   hundreds of kilobytes.
//! * [`Forensics`] — the engine-facing handle combining two rings (all
//!   recent queries, and slow/error captures) with a **tail-sampling**
//!   rule: any query slower than the threshold, or ending in error, is
//!   always captured and appended to the slow-query JSONL log —
//!   independent of the trace stride.
//!
//! Like the other obs handles, a disabled [`Forensics`] is one `Option`
//! branch on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Value;
use crate::span::QueryTrace;
use crate::trace::TraceSink;

/// Why a trace was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureReason {
    /// Captured only because the flight recorder keeps every recent query.
    Recent,
    /// Total wall time met or exceeded the tail-sampling threshold.
    Slow,
    /// The query ended in error.
    Error,
}

impl CaptureReason {
    /// Stable string form used in JSON dumps and the slow-query log.
    pub fn as_str(&self) -> &'static str {
        match self {
            CaptureReason::Recent => "recent",
            CaptureReason::Slow => "slow",
            CaptureReason::Error => "error",
        }
    }
}

/// One recorded trace with its capture sequence number and reason.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEntry {
    /// Monotonic capture sequence (per ring).
    pub seq: u64,
    /// Why this entry was captured.
    pub reason: CaptureReason,
    /// The query trace itself.
    pub trace: QueryTrace,
}

impl FlightEntry {
    /// The entry as a JSON object: `seq` and `reason` prepended to the
    /// trace's own fields, flat, so [`QueryTrace::from_value`] (and
    /// therefore `nucdb profile`) parses an entry dump directly.
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("seq".to_string(), crate::json::num(self.seq)),
            (
                "reason".to_string(),
                Value::Str(self.reason.as_str().to_string()),
            ),
        ];
        if let Value::Obj(trace_members) = self.trace.to_value() {
            members.extend(trace_members);
        }
        Value::Obj(members)
    }
}

fn recover<T>(result: std::sync::LockResult<T>) -> T {
    // A panicking recorder thread must not take forensics down with it:
    // a poisoned slot just holds a possibly-stale entry, which is fine
    // for a diagnostic ring.
    result.unwrap_or_else(|poison| poison.into_inner())
}

/// Fixed-capacity ring of the most recent [`FlightEntry`]s.
///
/// The write cursor is an atomic; each slot has its own mutex, taken
/// only for the `Option` swap. See the module docs for the contention
/// and memory-bound arguments.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEntry>>>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Maximum number of entries retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of traces ever recorded (not the number retained).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Record a trace, overwriting the oldest entry once full. Returns
    /// the entry's sequence number.
    pub fn record(&self, trace: QueryTrace, reason: CaptureReason) -> u64 {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = recover(self.slots[slot].lock());
        // A slow writer that reserved this slot an entire lap ago may
        // arrive after us; keep whichever entry is newer.
        if guard.as_ref().is_none_or(|prev| prev.seq < seq) {
            *guard = Some(FlightEntry { seq, reason, trace });
        }
        seq
    }

    /// The retained entries, newest first.
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let mut entries: Vec<FlightEntry> = self
            .slots
            .iter()
            .filter_map(|slot| recover(slot.lock()).clone())
            .collect();
        entries.sort_by_key(|entry| std::cmp::Reverse(entry.seq));
        entries
    }
}

/// Configuration for [`Forensics::new`].
#[derive(Debug, Clone)]
pub struct ForensicsConfig {
    /// Capacity of the all-queries ring (`GET /debug/queries`).
    pub recent_capacity: usize,
    /// Capacity of the slow/error ring (`GET /debug/slow`).
    pub slow_capacity: usize,
    /// Tail-sampling threshold in nanoseconds: a query whose total wall
    /// time meets or exceeds this is always captured. `u64::MAX`
    /// disables the slow classification (errors are still captured).
    pub slow_threshold_ns: u64,
    /// JSONL sink for slow/error captures (disabled sink = ring only).
    pub slow_log: TraceSink,
    /// Deterministic per-query latency injection in nanoseconds, for
    /// testing the tail sampler (`0` = off). Results are unaffected —
    /// the engine only sleeps.
    pub inject_delay_ns: u64,
}

impl Default for ForensicsConfig {
    fn default() -> ForensicsConfig {
        ForensicsConfig {
            recent_capacity: 256,
            slow_capacity: 64,
            slow_threshold_ns: u64::MAX,
            slow_log: TraceSink::disabled(),
            inject_delay_ns: 0,
        }
    }
}

struct ForensicsCore {
    recent: FlightRecorder,
    slow: FlightRecorder,
    slow_threshold_ns: u64,
    slow_log: TraceSink,
    inject_delay_ns: u64,
}

/// Shared handle to the query forensics state. Cloning is cheap; all
/// clones share the rings. The disabled handle holds nothing.
#[derive(Clone, Default)]
pub struct Forensics {
    inner: Option<Arc<ForensicsCore>>,
}

impl Forensics {
    /// An enabled forensics handle with the given configuration.
    pub fn new(config: ForensicsConfig) -> Forensics {
        Forensics {
            inner: Some(Arc::new(ForensicsCore {
                recent: FlightRecorder::new(config.recent_capacity),
                slow: FlightRecorder::new(config.slow_capacity),
                slow_threshold_ns: config.slow_threshold_ns,
                slow_log: config.slow_log,
                inject_delay_ns: config.inject_delay_ns,
            })),
        }
    }

    /// A no-op handle: every call is one branch.
    pub fn disabled() -> Forensics {
        Forensics { inner: None }
    }

    /// Does this handle record anywhere?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The tail-sampling threshold, if enabled.
    pub fn slow_threshold_ns(&self) -> Option<u64> {
        self.inner.as_ref().map(|core| core.slow_threshold_ns)
    }

    /// Injected per-query latency for tail-sampler tests (0 = off).
    pub fn inject_delay_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |core| core.inject_delay_ns)
    }

    /// Capacity of the recent-queries ring (0 when disabled).
    pub fn recent_capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |core| core.recent.capacity())
    }

    /// Capacity of the slow/error ring (0 when disabled).
    pub fn slow_capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |core| core.slow.capacity())
    }

    /// Total traces ever recorded to the recent ring, including entries
    /// the ring has since overwritten (0 when disabled). Occupancy is
    /// `min(recent_recorded, recent_capacity)`; the surplus is the
    /// number of captures dropped from the ring.
    pub fn recent_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |core| core.recent.recorded())
    }

    /// Total traces ever recorded to the slow/error ring, including
    /// overwritten entries (0 when disabled).
    pub fn slow_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |core| core.slow.recorded())
    }

    /// Classify and record a completed query trace. Returns the capture
    /// reason; `Slow` and `Error` traces additionally land in the slow
    /// ring and the slow-query log. No-op (returning `Recent`) when
    /// disabled.
    pub fn observe(&self, trace: QueryTrace) -> CaptureReason {
        let Some(core) = &self.inner else {
            return CaptureReason::Recent;
        };
        let reason = if trace.error.is_some() {
            CaptureReason::Error
        } else if trace.total_ns >= core.slow_threshold_ns {
            CaptureReason::Slow
        } else {
            CaptureReason::Recent
        };
        if reason != CaptureReason::Recent {
            core.slow.record(trace.clone(), reason);
            if core.slow_log.is_enabled() {
                let entry = FlightEntry {
                    seq: core.slow.recorded().saturating_sub(1),
                    reason,
                    trace: trace.clone(),
                };
                core.slow_log.emit_value(&entry.to_value());
            }
        }
        core.recent.record(trace, reason);
        reason
    }

    /// Retained recent entries, newest first (empty when disabled).
    pub fn recent(&self) -> Vec<FlightEntry> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |core| core.recent.snapshot())
    }

    /// Retained slow/error entries, newest first (empty when disabled).
    pub fn slow(&self) -> Vec<FlightEntry> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |core| core.slow.snapshot())
    }

    /// Flush the slow-query log.
    pub fn flush(&self) {
        if let Some(core) = &self.inner {
            core.slow_log.flush();
        }
    }

    /// The slow-query log sink (disabled sink when forensics is off or
    /// no log was configured). Lets callers bind its drop/rotation
    /// counters or read its tallies.
    pub fn slow_log(&self) -> TraceSink {
        self.inner
            .as_ref()
            .map_or_else(TraceSink::disabled, |core| core.slow_log.clone())
    }
}

impl std::fmt::Debug for Forensics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Forensics")
            .field("enabled", &self.is_enabled())
            .field("recent_capacity", &self.recent_capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanNode;

    fn trace(id: &str, total_ns: u64) -> QueryTrace {
        QueryTrace {
            request_id: id.to_string(),
            total_ns,
            results: 1,
            error: None,
            root: SpanNode::new("query", 0, total_ns),
            plan: None,
        }
    }

    #[test]
    fn ring_keeps_last_n_newest_first() {
        let ring = FlightRecorder::new(4);
        for i in 0..10u64 {
            ring.record(trace(&format!("req-{i}"), i), CaptureReason::Recent);
        }
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 4);
        let ids: Vec<&str> = entries
            .iter()
            .map(|e| e.trace.request_id.as_str())
            .collect();
        assert_eq!(ids, ["req-9", "req-8", "req-7", "req-6"]);
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn concurrent_recording_is_capped_and_loses_nothing_recent() {
        let ring = Arc::new(FlightRecorder::new(8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        ring.record(trace(&format!("t{t}-{i}"), i), CaptureReason::Recent);
                    }
                });
            }
        });
        let entries = ring.snapshot();
        assert_eq!(entries.len(), 8);
        assert_eq!(ring.recorded(), 400);
        // The eight retained entries are the eight highest sequence numbers.
        let min_seq = entries.iter().map(|e| e.seq).min().unwrap();
        assert!(min_seq >= 392, "stale entry survived: seq {min_seq}");
    }

    #[test]
    fn tail_sampling_classifies_slow_and_error() {
        let forensics = Forensics::new(ForensicsConfig {
            recent_capacity: 8,
            slow_capacity: 4,
            slow_threshold_ns: 1_000,
            ..ForensicsConfig::default()
        });
        assert_eq!(forensics.observe(trace("fast", 10)), CaptureReason::Recent);
        assert_eq!(forensics.observe(trace("slow", 5_000)), CaptureReason::Slow);
        let mut failed = trace("bad", 5);
        failed.error = Some("boom".to_string());
        assert_eq!(forensics.observe(failed), CaptureReason::Error);

        assert_eq!(forensics.recent().len(), 3);
        let slow = forensics.slow();
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].reason, CaptureReason::Error);
        assert_eq!(slow[1].reason, CaptureReason::Slow);
        // Threshold is inclusive: exactly-threshold queries are captured.
        assert_eq!(forensics.observe(trace("edge", 1_000)), CaptureReason::Slow);
    }

    #[test]
    fn disabled_forensics_is_inert() {
        let forensics = Forensics::disabled();
        assert!(!forensics.is_enabled());
        assert_eq!(forensics.observe(trace("x", 1)), CaptureReason::Recent);
        assert!(forensics.recent().is_empty());
        assert!(forensics.slow().is_empty());
        assert_eq!(forensics.recent_capacity(), 0);
    }

    #[test]
    fn entry_json_parses_back_as_query_trace() {
        let entry = FlightEntry {
            seq: 41,
            reason: CaptureReason::Slow,
            trace: trace("req-x", 9_999),
        };
        let rendered = entry.to_value().render();
        let value = crate::json::parse(&rendered).unwrap();
        assert_eq!(value.get("reason").and_then(Value::as_str), Some("slow"));
        let parsed = QueryTrace::from_value(&value).unwrap();
        assert_eq!(parsed, entry.trace);
    }
}
