//! # nucdb-obs — observability substrate for the search stack
//!
//! The paper's central claim is about *where time goes*: partitioned
//! (coarse index + fine alignment) evaluation wins because the expensive
//! stage runs on few records. Verifying that — and every subsequent
//! performance claim — needs latency *distributions* per stage, not just
//! per-call means. This crate provides the machinery and nothing else:
//!
//! * [`MetricsRegistry`] — a registry of named metrics. Registration and
//!   snapshotting take an internal lock (cold path); the handles it hands
//!   out ([`Counter`], [`Gauge`], [`Histogram`]) touch only atomics, so
//!   the hot path — including the concurrent workers of
//!   `search_batch_parallel` — is lock-free and allocation-free.
//! * [`Histogram`] — log-bucketed (power-of-two exponent with 16 linear
//!   sub-buckets, HDR-style) value recorder with ≤ 6.25 % relative bucket
//!   width, built for nanosecond latencies but usable for any `u64`.
//! * [`Snapshot`] — a point-in-time copy of every registered metric, with
//!   [`Snapshot::delta`] for interval accounting and percentile
//!   extraction (p50/p90/p99/max) from histogram snapshots.
//! * Exposition in two formats: Prometheus text ([`Snapshot::to_prometheus`])
//!   and JSON ([`Snapshot::to_json`]).
//! * [`TraceSink`] — a sampled, structured query log: one JSON object per
//!   line (JSONL) carrying per-query stage timings, counter deltas and
//!   candidate counts.
//! * Query forensics: [`SpanNode`]/[`QueryTrace`] span trees attaching
//!   work counters to every timed stage, a [`FlightRecorder`] ring of
//!   the last N query traces with tail sampling ([`Forensics`]) that
//!   always captures slow or failed queries, and offline aggregation
//!   ([`profile::aggregate`]) backing `nucdb profile`.
//!
//! ## Cost model
//!
//! A registry is either *enabled* or *disabled* ([`MetricsRegistry::disabled`]).
//! Handles from a disabled registry hold no storage at all: every record
//! call is one branch on an `Option` discriminant and returns — provably
//! free, safe to leave compiled into the hottest path. Handles from an
//! enabled registry cost one relaxed atomic RMW per event (histograms:
//! three — bucket, sum, max).
//!
//! The crate is intentionally dependency-free so every layer of the
//! workspace (index, store, engine, CLI, benches) can use it without
//! weight.

#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod profile;
pub mod registry;
pub mod span;
pub mod trace;

pub use flight::{CaptureReason, FlightEntry, FlightRecorder, Forensics, ForensicsConfig};
pub use hist::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use profile::{aggregate, ProfileReport, QuerySummary, StageAgg};
pub use registry::{
    Counter, Gauge, MetricKind, MetricSnapshot, MetricsRegistry, Snapshot, ValueSnapshot,
};
pub use span::{QueryTrace, SpanNode};
pub use trace::{TraceEvent, TraceSink};
