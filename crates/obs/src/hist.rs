//! Log-bucketed latency histogram (HDR-style).
//!
//! Values are bucketed by their power-of-two exponent, each exponent
//! split into 16 linear sub-buckets, so bucket width is at most 1/16 of
//! the bucket's lower bound (≤ 6.25 % relative error on any reported
//! quantile). The whole `u64` range is covered by [`NUM_BUCKETS`] buckets
//! (values 0–15 get exact unit buckets), small enough that one histogram
//! is ~8 KiB of atomics and can be left enabled in production.
//!
//! Recording is wait-free: one relaxed `fetch_add` on the bucket, one on
//! the running sum, one `fetch_max` on the maximum. There is no separate
//! count cell — the count is the sum of the buckets, so a snapshot taken
//! after all writers finish is exact (and one taken concurrently is a
//! consistent-enough superset/subset, never torn per bucket).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Linear sub-buckets per power of two (16 → ≤ 6.25 % bucket width).
const SUB_BITS: usize = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`.
pub const NUM_BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS) * SUB_COUNT;

/// The bucket index a value lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as usize;
        (exp - SUB_BITS + 1) * SUB_COUNT + ((value >> (exp - SUB_BITS)) as usize & (SUB_COUNT - 1))
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index < SUB_COUNT {
        return (index as u64, index as u64);
    }
    let block = index / SUB_COUNT; // 1..=(64 - SUB_BITS)
    let sub = (index % SUB_COUNT) as u64;
    let shift = block - 1;
    let lower = (SUB_COUNT as u64 + sub) << shift;
    // `(1 << shift) - 1` first: for the top bucket `lower + (1 << shift)`
    // is 2^64 and would overflow.
    let upper = lower + ((1u64 << shift) - 1);
    (lower, upper)
}

pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        // `AtomicU64` is not `Copy`; build the array through a Vec.
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!());
        HistogramCore {
            buckets,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; NUM_BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A lock-free value-distribution recorder.
///
/// Cloning shares the underlying storage. A disabled histogram
/// ([`Histogram::disabled`], or any handle from a disabled registry)
/// holds no storage: recording is one branch and returns.
#[derive(Clone)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A standalone enabled histogram (not tied to any registry).
    pub fn new() -> Histogram {
        Histogram(Some(Arc::new(HistogramCore::new())))
    }

    /// A no-op histogram: recording does nothing and costs one branch.
    pub fn disabled() -> Histogram {
        Histogram(None)
    }

    /// Does this handle record anywhere?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the distribution (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            Some(core) => core.snapshot(),
            None => HistogramSnapshot::empty(),
        }
    }
}

impl Default for Histogram {
    /// The default is the *disabled* histogram, matching `Counter` and
    /// `Gauge`: a default-constructed metrics bundle records nothing.
    fn default() -> Histogram {
        Histogram::disabled()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("enabled", &self.is_enabled())
            .field("count", &snap.count())
            .field("max", &snap.max)
            .finish()
    }
}

/// A point-in-time copy of a histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest value ever recorded (not reset by delta).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// The value at or below which `p` percent of recordings fall
    /// (`0.0 < p <= 100.0`). Reports the containing bucket's upper bound,
    /// clamped to the observed maximum, so the answer is within one
    /// bucket width (≤ 6.25 %) of the true quantile and never exceeds
    /// [`HistogramSnapshot::max`]. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0 * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Recordings since `earlier` was taken: per-bucket and sum
    /// subtraction (saturating, so a racing writer can never underflow
    /// the result). `max` keeps the later snapshot's all-time maximum —
    /// a per-window maximum cannot be recovered from bucket counts.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(&now, &then)| now.saturating_sub(then))
                .collect(),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, the
    /// shape Prometheus histogram exposition wants. The final entry is
    /// always `(u64::MAX, total)`.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                cumulative += n;
                out.push((bucket_bounds(index).1, cumulative));
            }
        }
        if out.last().map(|&(upper, _)| upper) != Some(u64::MAX) {
            out.push((u64::MAX, cumulative));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
        }
    }

    #[test]
    fn bounds_partition_the_u64_range() {
        // Buckets tile the range: each upper + 1 == next lower.
        let mut expected_lower = 0u64;
        for index in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            assert_eq!(lo, expected_lower, "bucket {index}");
            assert!(hi >= lo);
            if index + 1 < NUM_BUCKETS {
                expected_lower = hi + 1;
            } else {
                assert_eq!(hi, u64::MAX);
            }
        }
    }

    #[test]
    fn extremes_are_contained() {
        for v in [0, 1, 15, 16, 17, 1 << 20, u64::MAX - 1, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} bucket [{lo}, {hi}]");
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for index in SUB_COUNT..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(index);
            let width = hi - lo + 1;
            assert!(
                width as f64 / lo as f64 <= 1.0 / SUB_COUNT as f64 + 1e-12,
                "bucket {index}: width {width} at lower bound {lo}"
            );
        }
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.max, 1000);
        // Within one bucket (≤ 6.25 %) of the exact quantile.
        let p50 = snap.p50();
        assert!((469..=532).contains(&p50), "p50 {p50}");
        let p99 = snap.p99();
        assert!((928..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(snap.percentile(100.0), 1000);
        assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
    }

    #[test]
    fn disabled_histogram_is_inert() {
        let h = Histogram::disabled();
        h.record(123);
        h.record_duration(Duration::from_millis(5));
        assert!(!h.is_enabled());
        let snap = h.snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.p99(), 0);
    }

    #[test]
    fn delta_isolates_a_window() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        let before = h.snapshot();
        h.record(1000);
        h.record(1000);
        let after = h.snapshot();
        let window = after.delta(&before);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum, 2000);
        assert_eq!(window.percentile(100.0), window.max.min(1069));
    }

    #[test]
    fn cumulative_buckets_end_at_infinity() {
        let h = Histogram::new();
        h.record(3);
        h.record(700);
        let cum = h.snapshot().cumulative_buckets();
        assert_eq!(cum.last().unwrap().0, u64::MAX);
        assert_eq!(cum.last().unwrap().1, 2);
        // Cumulative counts are monotone.
        for pair in cum.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
            assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn clone_shares_storage() {
        let a = Histogram::new();
        let b = a.clone();
        a.record(7);
        b.record(9);
        assert_eq!(a.snapshot().count(), 2);
    }
}
