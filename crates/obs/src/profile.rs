//! Offline aggregation of query-trace dumps (`nucdb profile`).
//!
//! Takes the JSONL emitted by the trace sink / slow-query log, or a
//! `GET /debug/queries` / `GET /debug/slow` dump, and folds every
//! [`QueryTrace`] in it into one [`ProfileReport`]:
//!
//! * a **per-stage self-time breakdown** — spans grouped by name, with
//!   self time ([`SpanNode::self_nanos`]) so parents don't double-count
//!   their children;
//! * **work-counter totals** across all spans (postings bytes read, ids
//!   decoded, blocks decoded/skipped, …), connecting time to work;
//! * a **top-K slowest queries** table keyed by request id.
//!
//! The parser is deliberately forgiving about framing: the input may be
//! one JSON document with a `"queries"` array (debug-endpoint dump),
//! JSONL of trace lines, JSONL of flight entries, or a mix; lines that
//! don't carry a trace are counted in [`ProfileReport::skipped_lines`]
//! rather than failing the run.

use crate::json::{num, Value};
use crate::span::{QueryTrace, SpanNode};

/// Aggregate timing for one span name across all parsed traces.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAgg {
    /// Span name (`"extract"`, `"fine"`, …).
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of span durations.
    pub total_ns: u64,
    /// Sum of span self times (duration minus children).
    pub self_ns: u64,
    /// Largest single span duration.
    pub max_ns: u64,
}

/// One row of the slowest-queries table.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySummary {
    /// Request id (may be empty for offline queries).
    pub request_id: String,
    /// Total query wall time.
    pub total_ns: u64,
    /// Results returned.
    pub results: u64,
    /// Error message, if the query failed.
    pub error: Option<String>,
}

/// The aggregated profile of a trace dump.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Traces parsed.
    pub queries: u64,
    /// Of those, queries that ended in error.
    pub errors: u64,
    /// Sum of total query wall time.
    pub total_ns: u64,
    /// Per-stage aggregates, sorted by self time descending.
    pub stages: Vec<StageAgg>,
    /// Work-counter totals across all spans, sorted by name
    /// (`@`-prefixed identity labels excluded).
    pub counters: Vec<(String, u64)>,
    /// Top-K slowest queries, slowest first.
    pub slowest: Vec<QuerySummary>,
    /// Input lines that carried no parseable trace.
    pub skipped_lines: u64,
}

/// Aggregate a trace dump. `top_k` bounds the slowest-queries table.
pub fn aggregate(input: &str, top_k: usize) -> ProfileReport {
    let mut report = ProfileReport::default();
    let mut stages: Vec<StageAgg> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut summaries: Vec<QuerySummary> = Vec::new();

    let fold_trace = |trace: QueryTrace,
                      report: &mut ProfileReport,
                      stages: &mut Vec<StageAgg>,
                      counters: &mut Vec<(String, u64)>,
                      summaries: &mut Vec<QuerySummary>| {
        report.queries += 1;
        report.total_ns += trace.total_ns;
        if trace.error.is_some() {
            report.errors += 1;
        }
        if !trace.root.name.is_empty() {
            trace.root.walk(&mut |span: &SpanNode| {
                let agg = match stages.iter_mut().find(|s| s.name == span.name) {
                    Some(agg) => agg,
                    None => {
                        stages.push(StageAgg {
                            name: span.name.clone(),
                            count: 0,
                            total_ns: 0,
                            self_ns: 0,
                            max_ns: 0,
                        });
                        stages.last_mut().unwrap()
                    }
                };
                agg.count += 1;
                agg.total_ns += span.dur_ns;
                agg.self_ns += span.self_nanos();
                agg.max_ns = agg.max_ns.max(span.dur_ns);
                for (key, val) in &span.counters {
                    // `@`-prefixed counters are identity labels (record
                    // id, strand, score); summing them is meaningless.
                    if key.starts_with('@') {
                        continue;
                    }
                    match counters.iter_mut().find(|(k, _)| k == key) {
                        Some((_, total)) => *total += val,
                        None => counters.push((key.clone(), *val)),
                    }
                }
            });
        }
        summaries.push(QuerySummary {
            request_id: trace.request_id,
            total_ns: trace.total_ns,
            results: trace.results,
            error: trace.error,
        });
    };

    // A value may be a trace itself or a `{"queries":[…]}` dump.
    let fold_value = |value: &Value,
                      report: &mut ProfileReport,
                      stages: &mut Vec<StageAgg>,
                      counters: &mut Vec<(String, u64)>,
                      summaries: &mut Vec<QuerySummary>|
     -> bool {
        if let Some(Value::Arr(entries)) = value.get("queries") {
            let mut any = false;
            for entry in entries {
                if let Some(trace) = QueryTrace::from_value(entry) {
                    fold_trace(trace, report, stages, counters, summaries);
                    any = true;
                }
            }
            any
        } else if let Some(trace) = QueryTrace::from_value(value) {
            fold_trace(trace, report, stages, counters, summaries);
            true
        } else {
            false
        }
    };

    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = match crate::json::parse(line) {
            Ok(value) => fold_value(
                &value,
                &mut report,
                &mut stages,
                &mut counters,
                &mut summaries,
            ),
            Err(_) => false,
        };
        if !parsed {
            report.skipped_lines += 1;
        }
    }

    stages.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    summaries.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then(a.request_id.cmp(&b.request_id))
    });
    summaries.truncate(top_k);

    report.stages = stages;
    report.counters = counters;
    report.slowest = summaries;
    report
}

impl ProfileReport {
    /// The report as a JSON object (what `nucdb profile` writes to
    /// `results/`).
    pub fn to_value(&self) -> Value {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(s.name.clone())),
                    ("count".to_string(), num(s.count)),
                    ("total_ns".to_string(), num(s.total_ns)),
                    ("self_ns".to_string(), num(s.self_ns)),
                    ("max_ns".to_string(), num(s.max_ns)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), num(*v)))
            .collect();
        let slowest = self
            .slowest
            .iter()
            .map(|q| {
                let mut members = vec![
                    ("request_id".to_string(), Value::Str(q.request_id.clone())),
                    ("total_ns".to_string(), num(q.total_ns)),
                    ("results".to_string(), num(q.results)),
                ];
                if let Some(err) = &q.error {
                    members.push(("error".to_string(), Value::Str(err.clone())));
                }
                Value::Obj(members)
            })
            .collect();
        Value::Obj(vec![
            ("queries".to_string(), num(self.queries)),
            ("errors".to_string(), num(self.errors)),
            ("total_ns".to_string(), num(self.total_ns)),
            ("skipped_lines".to_string(), num(self.skipped_lines)),
            ("stages".to_string(), Value::Arr(stages)),
            ("counters".to_string(), Value::Obj(counters)),
            ("slowest".to_string(), Value::Arr(slowest)),
        ])
    }

    /// Human-readable report text (what `nucdb profile` prints).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} queries ({} errors), {:.3} ms total query time",
            self.queries,
            self.errors,
            self.total_ns as f64 / 1e6
        ));
        if self.skipped_lines > 0 {
            out.push_str(&format!(", {} lines skipped", self.skipped_lines));
        }
        out.push('\n');

        out.push_str("\nstage breakdown (by self time):\n");
        out.push_str(&format!(
            "  {:<14} {:>8} {:>12} {:>12} {:>10} {:>7}\n",
            "stage", "count", "self_ms", "total_ms", "max_us", "share"
        ));
        let self_total: u64 = self.stages.iter().map(|s| s.self_ns).sum();
        for stage in &self.stages {
            let share = if self_total > 0 {
                stage.self_ns as f64 / self_total as f64 * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<14} {:>8} {:>12.3} {:>12.3} {:>10.1} {:>6.1}%\n",
                stage.name,
                stage.count,
                stage.self_ns as f64 / 1e6,
                stage.total_ns as f64 / 1e6,
                stage.max_ns as f64 / 1e3,
                share
            ));
        }

        out.push_str("\nwork counters:\n");
        for (name, total) in &self.counters {
            out.push_str(&format!("  {:<24} {:>14}\n", name, total));
        }

        out.push_str(&format!("\nslowest {} queries:\n", self.slowest.len()));
        out.push_str(&format!(
            "  {:>4} {:<24} {:>10} {:>8}  {}\n",
            "rank", "request_id", "total_ms", "results", "error"
        ));
        for (i, q) in self.slowest.iter().enumerate() {
            let id = if q.request_id.is_empty() {
                "-"
            } else {
                q.request_id.as_str()
            };
            out.push_str(&format!(
                "  {:>4} {:<24} {:>10.3} {:>8}  {}\n",
                i + 1,
                id,
                q.total_ns as f64 / 1e6,
                q.results,
                q.error.as_deref().unwrap_or("-")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_line(id: &str, total: u64, extract: u64, fine: u64) -> String {
        let root = SpanNode::new("query", 0, total)
            .child(
                SpanNode::new("coarse", 0, extract + 10)
                    .child(SpanNode::new("extract", 0, extract).counter("ids_decoded", 100)),
            )
            .child(
                SpanNode::new("fine", extract + 10, fine)
                    .counter("alignments", 3)
                    .counter("@strand", 0),
            );
        QueryTrace {
            request_id: id.to_string(),
            total_ns: total,
            results: 2,
            error: None,
            root,
            plan: None,
        }
        .to_value()
        .render()
    }

    #[test]
    fn aggregates_stage_self_time_and_counters_exactly() {
        let input = format!(
            "{}\n{}\n",
            trace_line("a", 1_000, 300, 500),
            trace_line("b", 2_000, 600, 900)
        );
        let report = aggregate(&input, 10);
        assert_eq!(report.queries, 2);
        assert_eq!(report.errors, 0);
        assert_eq!(report.total_ns, 3_000);
        assert_eq!(report.skipped_lines, 0);

        let stage = |name: &str| report.stages.iter().find(|s| s.name == name).unwrap();
        // extract: 300 + 600 total and self (leaf).
        assert_eq!(stage("extract").total_ns, 900);
        assert_eq!(stage("extract").self_ns, 900);
        assert_eq!(stage("extract").count, 2);
        assert_eq!(stage("extract").max_ns, 600);
        // coarse self time = 10 per query (duration extract+10 minus child).
        assert_eq!(stage("coarse").self_ns, 20);
        // query self = total - (coarse + fine).
        assert_eq!(
            stage("query").self_ns,
            (1_000 - 310 - 500) + (2_000 - 610 - 900)
        );
        // Identity labels (`@strand`) are excluded from work totals.
        assert_eq!(
            report.counters,
            vec![
                ("alignments".to_string(), 6),
                ("ids_decoded".to_string(), 200),
            ]
        );
    }

    #[test]
    fn slowest_table_is_ranked_and_truncated() {
        let mut input = String::new();
        for i in 0..5u64 {
            input.push_str(&trace_line(&format!("q{i}"), (i + 1) * 100, 10, 20));
            input.push('\n');
        }
        let report = aggregate(&input, 3);
        assert_eq!(report.slowest.len(), 3);
        let ids: Vec<&str> = report
            .slowest
            .iter()
            .map(|q| q.request_id.as_str())
            .collect();
        assert_eq!(ids, ["q4", "q3", "q2"]);
    }

    #[test]
    fn accepts_debug_dump_and_skips_garbage() {
        let dump = format!(
            "{{\"capacity\":4,\"queries\":[{},{}]}}",
            trace_line("a", 500, 100, 200),
            trace_line("b", 700, 100, 200)
        );
        let input = format!("not json\n{{\"event\":\"other\"}}\n{dump}\n");
        let report = aggregate(&input, 10);
        assert_eq!(report.queries, 2);
        assert_eq!(report.skipped_lines, 2);
    }

    #[test]
    fn error_traces_count_without_spans() {
        let line = QueryTrace {
            request_id: "bad".to_string(),
            total_ns: 42,
            results: 0,
            error: Some("corruption".to_string()),
            root: SpanNode::default(),
            plan: None,
        }
        .to_value()
        .render();
        let report = aggregate(&line, 10);
        assert_eq!(report.queries, 1);
        assert_eq!(report.errors, 1);
        assert!(report.stages.is_empty());
        assert_eq!(report.slowest[0].error.as_deref(), Some("corruption"));
    }

    #[test]
    fn json_report_round_trips_through_parser() {
        let input = format!("{}\n", trace_line("a", 1_000, 300, 500));
        let report = aggregate(&input, 10);
        let rendered = report.to_value().render();
        let value = crate::json::parse(&rendered).unwrap();
        assert_eq!(value.get("queries").and_then(Value::as_f64), Some(1.0));
        let text = report.render_text();
        assert!(text.contains("stage breakdown"));
        assert!(text.contains("extract"));
        assert!(text.contains("ids_decoded"));
    }
}
