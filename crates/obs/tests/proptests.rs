//! Property tests for the histogram: bucket bounds tile and contain,
//! percentiles are monotone and bounded, and delta windows account
//! exactly for the values recorded inside them.

use nucdb_obs::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket whose bounds contain it.
    #[test]
    fn recorded_values_land_in_containing_buckets(value in any::<u64>()) {
        let index = bucket_index(value);
        prop_assert!(index < NUM_BUCKETS);
        let (lower, upper) = bucket_bounds(index);
        prop_assert!(
            lower <= value && value <= upper,
            "value {value} outside bucket {index} = [{lower}, {upper}]"
        );
    }

    /// Bucket bounds tile the u64 range: each bucket starts one past the
    /// previous bucket's upper bound.
    #[test]
    fn buckets_tile_without_gaps(index in 1usize..NUM_BUCKETS) {
        let (_, prev_upper) = bucket_bounds(index - 1);
        let (lower, upper) = bucket_bounds(index);
        prop_assert_eq!(lower, prev_upper + 1);
        prop_assert!(upper >= lower);
    }

    /// Percentiles of an arbitrary recorded distribution are monotone in
    /// p, never exceed the observed max, and the count is exact.
    #[test]
    fn percentiles_monotone_and_bounded(
        values in prop::collection::vec(any::<u64>(), 1..200),
        ps in prop::collection::vec(0.0f64..=100.0, 2..10),
    ) {
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        let observed_max = values.iter().copied().max().unwrap();
        prop_assert_eq!(snap.max, observed_max);

        let mut ps = ps;
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantiles: Vec<u64> = ps.iter().map(|&p| snap.percentile(p)).collect();
        for pair in quantiles.windows(2) {
            prop_assert!(pair[0] <= pair[1], "percentiles not monotone: {quantiles:?}");
        }
        for &q in &quantiles {
            prop_assert!(q <= observed_max);
        }
        // The 100th percentile is the observed max exactly.
        prop_assert_eq!(snap.percentile(100.0), observed_max);
    }

    /// A delta window contains exactly the values recorded between the
    /// two snapshots (count and sum; bucket-exact).
    #[test]
    fn delta_windows_account_exactly(
        before in prop::collection::vec(0u64..1 << 40, 0..50),
        during in prop::collection::vec(0u64..1 << 40, 1..50),
    ) {
        let hist = Histogram::new();
        for &v in &before {
            hist.record(v);
        }
        let start = hist.snapshot();
        for &v in &during {
            hist.record(v);
        }
        let end = hist.snapshot();
        let window = end.delta(&start);
        prop_assert_eq!(window.count(), during.len() as u64);
        prop_assert_eq!(window.sum, during.iter().sum::<u64>());
    }
}
