//! Concurrency stress: many writer threads hammer one histogram (and
//! counters) through registry handles; the merged snapshot must account
//! for every recorded value.

use nucdb_obs::{MetricsRegistry, ValueSnapshot};

#[test]
fn concurrent_histogram_writers_lose_no_samples() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 25_000;

    let registry = MetricsRegistry::new();
    let hist = registry.histogram("stress_lat_ns", "stress latencies");
    let ops = registry.counter("stress_ops_total", "stress ops");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = hist.clone();
            let ops = ops.clone();
            scope.spawn(move || {
                // Deterministic per-thread value stream spanning many
                // orders of magnitude, so buckets across the whole range
                // see contention.
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                for _ in 0..PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    hist.record(x >> (x % 60));
                    ops.inc();
                }
            });
        }
    });

    let snapshot = registry.snapshot();
    let Some(ValueSnapshot::Histogram(h)) = snapshot.get("stress_lat_ns") else {
        panic!("histogram missing from snapshot");
    };
    assert_eq!(h.count(), THREADS * PER_THREAD);
    assert_eq!(
        snapshot.get("stress_ops_total"),
        Some(&ValueSnapshot::Counter(THREADS * PER_THREAD))
    );
    // Percentile extraction agrees with the recorded max.
    assert!(h.percentile(100.0) == h.max);
    assert!(h.p50() <= h.p90() && h.p90() <= h.p99() && h.p99() <= h.max);
}

#[test]
fn snapshot_during_writes_is_internally_consistent() {
    let registry = MetricsRegistry::new();
    let hist = registry.histogram("live_lat_ns", "latencies under load");

    std::thread::scope(|scope| {
        let writer_hist = hist.clone();
        let writer = scope.spawn(move || {
            for i in 1..=200_000u64 {
                writer_hist.record(i);
            }
        });
        // Snapshots taken while the writer runs: counts only grow, and
        // every intermediate snapshot is a valid distribution.
        let mut last_count = 0;
        while !writer.is_finished() {
            let snap = hist.snapshot();
            let count = snap.count();
            assert!(count >= last_count, "count went backwards");
            if count > 0 {
                assert!(snap.p50() <= snap.max);
            }
            last_count = count;
        }
        writer.join().unwrap();
    });

    assert_eq!(hist.snapshot().count(), 200_000);
}
