//! Lock-free positional file reads with bounded transient-error retry.
//!
//! The paper's operating point keeps postings on disk, and the batch-parallel
//! search path hits the same index file from many worker threads at once. A
//! shared `Mutex<BufReader<File>>` serialises those reads (and pays a seek
//! syscall per fetch even when uncontended). [`PositionalReader`] instead
//! issues offset-addressed reads that never move a shared cursor:
//!
//! - unix: `pread(2)` via [`std::os::unix::fs::FileExt::read_at`]
//! - windows: `seek_read` (moves the cursor, but each call re-addresses, so
//!   the retry loop is all that's needed — still no shared state)
//! - elsewhere: a `Mutex<File>` seek+read fallback, the only tier that
//!   serialises
//! - [`PositionalReader::faulty`]: a [`FaultyFile`] shim for durability
//!   tests, exercising the exact same retry loop
//!
//! On unix and windows concurrent `read_exact_at` calls proceed fully in
//! parallel; the kernel page cache does the rest. All tiers share one
//! fill loop that retries transient errors (`Interrupted`, and the
//! injected faults from [`FaultyFile`]) at most
//! [`TRANSIENT_RETRY_LIMIT`] times per call, so a flaky device degrades
//! to a typed error instead of hanging a query forever.

use std::fs::File;
use std::io;

use crate::fault::FaultyFile;

/// Maximum number of transient-error retries absorbed by a single
/// [`PositionalReader::read_exact_at`] call before the error is
/// surfaced to the caller.
pub const TRANSIENT_RETRY_LIMIT: u32 = 8;

#[derive(Debug)]
enum Backing {
    #[cfg(any(unix, windows))]
    File(File),
    #[cfg(not(any(unix, windows)))]
    File(std::sync::Mutex<File>),
    Faulty(FaultyFile),
}

/// A file handle supporting concurrent offset-addressed reads.
///
/// `read_exact_at` is `&self` and thread-safe on every platform tier; on
/// unix/windows it is also contention-free.
#[derive(Debug)]
pub struct PositionalReader {
    backing: Backing,
}

impl PositionalReader {
    /// Wrap a file. The shared cursor position is never consulted again.
    pub fn new(file: File) -> PositionalReader {
        PositionalReader {
            #[cfg(any(unix, windows))]
            backing: Backing::File(file),
            #[cfg(not(any(unix, windows)))]
            backing: Backing::File(std::sync::Mutex::new(file)),
        }
    }

    /// Wrap a fault-injection shim: reads go through the same retry loop
    /// as real files, with the shim's planned faults applied.
    pub fn faulty(file: FaultyFile) -> PositionalReader {
        PositionalReader {
            backing: Backing::Faulty(file),
        }
    }

    /// One positional read (`pread(2)` semantics: may return fewer bytes
    /// than requested, zero at EOF).
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        match &self.backing {
            #[cfg(unix)]
            Backing::File(file) => std::os::unix::fs::FileExt::read_at(file, buf, offset),
            #[cfg(windows)]
            Backing::File(file) => std::os::windows::fs::FileExt::seek_read(file, buf, offset),
            #[cfg(not(any(unix, windows)))]
            Backing::File(file) => {
                use std::io::{Read, Seek, SeekFrom};
                let mut file = file.lock().unwrap_or_else(|e| e.into_inner());
                file.seek(SeekFrom::Start(offset))?;
                file.read(buf)
            }
            Backing::Faulty(file) => file.read_at(buf, offset),
        }
    }

    /// Fill `buf` from the byte range starting at `offset`, retrying
    /// transient errors up to [`TRANSIENT_RETRY_LIMIT`] times.
    pub fn read_exact_at(&self, mut buf: &mut [u8], mut offset: u64) -> io::Result<()> {
        let mut transient_retries = 0u32;
        while !buf.is_empty() {
            match self.read_at(buf, offset) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "failed to fill whole buffer",
                    ))
                }
                Ok(n) => {
                    buf = &mut buf[n..];
                    offset += n as u64;
                }
                Err(e) if is_transient(&e) && transient_retries < TRANSIENT_RETRY_LIMIT => {
                    transient_retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::io::Write;

    #[test]
    fn concurrent_reads_see_consistent_bytes() {
        let path = std::env::temp_dir().join(format!("nucdb_pread_{}", std::process::id()));
        let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let reader = PositionalReader::new(File::open(&path).unwrap());
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let reader = &reader;
                let payload = &payload;
                scope.spawn(move || {
                    // Each thread reads a distinct interleaved slice pattern.
                    let mut buf = vec![0u8; 997];
                    for round in 0..50 {
                        let offset =
                            ((t * 8191 + round * 131) % (payload.len() - buf.len())) as u64;
                        reader.read_exact_at(&mut buf, offset).unwrap();
                        assert_eq!(&buf[..], &payload[offset as usize..offset as usize + 997]);
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_file_read_errors() {
        let path = std::env::temp_dir().join(format!("nucdb_pread_short_{}", std::process::id()));
        std::fs::write(&path, b"tiny").unwrap();
        let reader = PositionalReader::new(File::open(&path).unwrap());
        let mut buf = [0u8; 16];
        assert!(reader.read_exact_at(&mut buf, 0).is_err());
        assert!(reader.read_exact_at(&mut buf[..2], 100).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn faulty_backing_short_reads_are_reassembled() {
        let payload: Vec<u8> = (0..8192u32).map(|i| (i % 253) as u8).collect();
        let reader = PositionalReader::faulty(FaultyFile::new(
            payload.clone(),
            FaultPlan::clean(21).with_short_reads(0.9),
        ));
        let mut buf = vec![0u8; 4000];
        reader.read_exact_at(&mut buf, 100).unwrap();
        assert_eq!(&buf[..], &payload[100..4100]);
    }

    #[test]
    fn bounded_retry_absorbs_transient_errors_within_budget() {
        let payload = vec![42u8; 1024];
        // Budget equals the retry limit: every injected error fits within
        // one call's retry allowance, so the read must succeed.
        let reader = PositionalReader::faulty(FaultyFile::new(
            payload.clone(),
            FaultPlan::clean(4).with_transient_errors(1.0, TRANSIENT_RETRY_LIMIT),
        ));
        let mut buf = vec![0u8; 1024];
        reader.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn unbounded_transient_errors_eventually_surface() {
        let payload = vec![42u8; 1024];
        // More faults than the retry limit allows in one call: the error
        // must surface instead of spinning forever.
        let reader = PositionalReader::faulty(FaultyFile::new(
            payload,
            FaultPlan::clean(4).with_transient_errors(1.0, 1000),
        ));
        let mut buf = vec![0u8; 1024];
        let err = reader.read_exact_at(&mut buf, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn truncated_faulty_file_reports_unexpected_eof() {
        let payload = vec![7u8; 512];
        let reader = PositionalReader::faulty(FaultyFile::new(
            payload,
            FaultPlan::clean(9).with_truncation(100),
        ));
        let mut buf = vec![0u8; 200];
        let err = reader.read_exact_at(&mut buf, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
