//! Lock-free positional file reads.
//!
//! The paper's operating point keeps postings on disk, and the batch-parallel
//! search path hits the same index file from many worker threads at once. A
//! shared `Mutex<BufReader<File>>` serialises those reads (and pays a seek
//! syscall per fetch even when uncontended). [`PositionalReader`] instead
//! issues offset-addressed reads that never move a shared cursor:
//!
//! - unix: `pread(2)` via [`std::os::unix::fs::FileExt::read_exact_at`]
//! - windows: `seek_read` (moves the cursor, but each call re-addresses, so
//!   a retry loop is all that's needed — still no shared state)
//! - elsewhere: a `Mutex<File>` seek+read fallback, the only tier that
//!   serialises
//!
//! On unix and windows concurrent `read_exact_at` calls proceed fully in
//! parallel; the kernel page cache does the rest.

use std::fs::File;
use std::io;

/// A file handle supporting concurrent offset-addressed reads.
///
/// `read_exact_at` is `&self` and thread-safe on every platform tier; on
/// unix/windows it is also contention-free.
#[derive(Debug)]
pub struct PositionalReader {
    #[cfg(any(unix, windows))]
    file: File,
    #[cfg(not(any(unix, windows)))]
    file: std::sync::Mutex<File>,
}

impl PositionalReader {
    /// Wrap a file. The shared cursor position is never consulted again.
    pub fn new(file: File) -> PositionalReader {
        PositionalReader {
            #[cfg(any(unix, windows))]
            file,
            #[cfg(not(any(unix, windows)))]
            file: std::sync::Mutex::new(file),
        }
    }

    /// Fill `buf` from the byte range starting at `offset`.
    #[cfg(unix)]
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
    }

    /// Fill `buf` from the byte range starting at `offset`.
    #[cfg(windows)]
    pub fn read_exact_at(&self, mut buf: &mut [u8], mut offset: u64) -> io::Result<()> {
        use std::os::windows::fs::FileExt;
        while !buf.is_empty() {
            match self.file.seek_read(buf, offset) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "failed to fill whole buffer",
                    ))
                }
                Ok(n) => {
                    buf = &mut buf[n..];
                    offset += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Fill `buf` from the byte range starting at `offset`.
    #[cfg(not(any(unix, windows)))]
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn concurrent_reads_see_consistent_bytes() {
        let path = std::env::temp_dir().join(format!("nucdb_pread_{}", std::process::id()));
        let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();

        let reader = PositionalReader::new(File::open(&path).unwrap());
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let reader = &reader;
                let payload = &payload;
                scope.spawn(move || {
                    // Each thread reads a distinct interleaved slice pattern.
                    let mut buf = vec![0u8; 997];
                    for round in 0..50 {
                        let offset =
                            ((t * 8191 + round * 131) % (payload.len() - buf.len())) as u64;
                        reader.read_exact_at(&mut buf, offset).unwrap();
                        assert_eq!(&buf[..], &payload[offset as usize..offset as usize + 997]);
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn short_file_read_errors() {
        let path = std::env::temp_dir().join(format!("nucdb_pread_short_{}", std::process::id()));
        std::fs::write(&path, b"tiny").unwrap();
        let reader = PositionalReader::new(File::open(&path).unwrap());
        let mut buf = [0u8; 16];
        assert!(reader.read_exact_at(&mut buf, 0).is_err());
        assert!(reader.read_exact_at(&mut buf[..2], 100).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
