//! Merging indexes: the maintenance path for a growing collection.
//!
//! GenBank-style archives grow continuously; rebuilding the whole index
//! per deposit batch would defeat the point of indexing. Instead the new
//! batch is indexed alone (cheap) and merged: record ids of the second
//! index are shifted past the first's, and equal-interval lists
//! concatenate — exactly the run-merge step of the external build, lifted
//! to whole indexes.
//!
//! Merging requires both inputs unstopped (a stopped index has already
//! discarded lists that the merged df might have kept); apply stopping
//! *after* merging with [`apply_stopping`].

use crate::compress::CompressedIndex;
use crate::error::IndexError;
use crate::postings::{Posting, PostingsList};
use crate::stopping::StopPolicy;

/// Merge two indexes over disjoint record sets: `b`'s records follow
/// `a`'s (its record ids are shifted by `a.num_records()`).
///
/// Both must share interval parameters and codec, and be unstopped.
pub fn merge_indexes(
    a: &CompressedIndex,
    b: &CompressedIndex,
) -> Result<CompressedIndex, IndexError> {
    if a.params().k != b.params().k || a.params().stride != b.params().stride {
        return Err(IndexError::Unsupported(
            "merge inputs disagree on interval parameters",
        ));
    }
    if a.codec() != b.codec() {
        return Err(IndexError::Unsupported("merge inputs disagree on codec"));
    }
    if a.params().stopping.is_some() || b.params().stopping.is_some() {
        return Err(IndexError::Unsupported(
            "merge inputs must be unstopped; apply stopping after merging",
        ));
    }
    if a.params().granularity != crate::interval::Granularity::Offsets {
        return Err(IndexError::Unsupported(
            "merging record-granularity indexes is not supported; rebuild instead",
        ));
    }

    let shift = a.num_records();
    let mut record_lens = a.record_lens().to_vec();
    record_lens.extend_from_slice(b.record_lens());

    // Two-pointer walk over both vocabularies (each sorted by code).
    let mut lists: Vec<(u64, PostingsList)> = Vec::new();
    let mut ia = 0usize;
    let mut ib = 0usize;
    let va = a.vocab();
    let vb = b.vocab();
    while ia < va.len() || ib < vb.len() {
        let ca = va.get(ia).map(|e| e.code);
        let cb = vb.get(ib).map(|e| e.code);
        match (ca, cb) {
            (Some(code_a), Some(code_b)) if code_a == code_b => {
                let mut list = a.postings(code_a)?.expect("vocab entry decodes");
                let tail = b.postings(code_b)?.expect("vocab entry decodes");
                list.entries
                    .extend(tail.entries.into_iter().map(|p| Posting {
                        record: p.record + shift,
                        offsets: p.offsets,
                    }));
                lists.push((code_a, list));
                ia += 1;
                ib += 1;
            }
            (Some(code_a), cb) if cb.is_none() || code_a < cb.unwrap() => {
                lists.push((code_a, a.postings(code_a)?.expect("vocab entry decodes")));
                ia += 1;
            }
            (_, Some(code_b)) => {
                let tail = b.postings(code_b)?.expect("vocab entry decodes");
                let shifted = PostingsList {
                    entries: tail
                        .entries
                        .into_iter()
                        .map(|p| Posting {
                            record: p.record + shift,
                            offsets: p.offsets,
                        })
                        .collect(),
                };
                lists.push((code_b, shifted));
                ib += 1;
            }
            _ => unreachable!("loop condition guarantees one side remains"),
        }
    }

    Ok(CompressedIndex::from_sorted_lists(
        a.params().clone(),
        a.codec(),
        record_lens,
        lists.into_iter(),
    ))
}

/// Re-derive an index with a stopping policy applied: lists whose df
/// exceeds the policy's limit are dropped and the parameters record the
/// policy. The input must be unstopped.
pub fn apply_stopping(
    index: &CompressedIndex,
    policy: StopPolicy,
) -> Result<CompressedIndex, IndexError> {
    if index.params().stopping.is_some() {
        return Err(IndexError::Unsupported("index is already stopped"));
    }
    let limit = policy.df_limit(index.num_records(), index.vocab().iter().map(|e| e.df));
    let lists: Vec<(u64, PostingsList)> = index
        .vocab()
        .iter()
        .filter(|e| e.df <= limit)
        .map(|e| {
            Ok((
                e.code,
                index.postings(e.code)?.expect("vocab entry decodes"),
            ))
        })
        .collect::<Result<_, IndexError>>()?;
    let params = index.params().clone().with_stopping(policy);
    Ok(CompressedIndex::from_sorted_lists(
        params,
        index.codec(),
        index.record_lens().to_vec(),
        lists.into_iter(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::compress::ListCodec;
    use crate::interval::IndexParams;
    use nucdb_seq::random::{CollectionSpec, SyntheticCollection};
    use nucdb_seq::Base;

    fn records(seed: u64) -> Vec<Vec<Base>> {
        SyntheticCollection::generate(&CollectionSpec::tiny(seed))
            .records
            .iter()
            .map(|r| r.seq.representative_bases())
            .collect()
    }

    fn build(records: &[Vec<Base>], params: IndexParams) -> CompressedIndex {
        let mut builder = IndexBuilder::new(params);
        for r in records {
            builder.add_record(r);
        }
        builder.finish()
    }

    #[test]
    fn merge_equals_joint_build() {
        let first = records(71);
        let second = records(72);
        let params = IndexParams::new(8);

        let a = build(&first, params.clone());
        let b = build(&second, params.clone());
        let merged = merge_indexes(&a, &b).unwrap();

        let mut joint: Vec<Vec<Base>> = first;
        joint.extend(second);
        let reference = build(&joint, params);

        assert_eq!(merged.num_records(), reference.num_records());
        assert_eq!(merged.record_lens(), reference.record_lens());
        assert_eq!(
            merged.decode_all().unwrap(),
            reference.decode_all().unwrap()
        );
        assert_eq!(merged.blob(), reference.blob());
    }

    #[test]
    fn merge_with_empty_index() {
        let some = records(73);
        let params = IndexParams::new(6);
        let a = build(&some, params.clone());
        let empty = build(&[], params);
        let merged = merge_indexes(&a, &empty).unwrap();
        assert_eq!(merged.decode_all().unwrap(), a.decode_all().unwrap());
        let merged = merge_indexes(&empty, &a).unwrap();
        // Record ids unchanged (shift is 0).
        assert_eq!(merged.decode_all().unwrap(), a.decode_all().unwrap());
    }

    #[test]
    fn merge_block_codec_equals_joint_build_with_max_counts() {
        let first = records(81);
        let second = records(82);
        let params = IndexParams::new(8);
        let block = |recs: &[Vec<Base>]| {
            let mut builder = IndexBuilder::new(params.clone()).with_codec(ListCodec::Block);
            for r in recs {
                builder.add_record(r);
            }
            builder.finish()
        };

        let merged = merge_indexes(&block(&first), &block(&second)).unwrap();
        let mut joint: Vec<Vec<Base>> = first;
        joint.extend(second);
        let reference = block(&joint);

        assert_eq!(merged.blob(), reference.blob());
        assert_eq!(
            merged.decode_all().unwrap(),
            reference.decode_all().unwrap()
        );
        // The merged index keeps a usable max-count table (the skip
        // plan's hint source), identical to a from-scratch build's.
        assert_eq!(merged.max_counts(), reference.max_counts());
        assert!(merged.max_counts().is_some());
    }

    #[test]
    fn merge_rejects_mismatched_params() {
        let r = records(74);
        let a = build(&r, IndexParams::new(8));
        let b = build(&r, IndexParams::new(10));
        assert!(merge_indexes(&a, &b).is_err());
        let c = {
            let mut builder = IndexBuilder::new(IndexParams::new(8)).with_codec(ListCodec::Gamma);
            for rec in &r {
                builder.add_record(rec);
            }
            builder.finish()
        };
        assert!(merge_indexes(&a, &c).is_err());
    }

    #[test]
    fn merge_rejects_stopped_inputs() {
        let r = records(75);
        let stopped = build(
            &r,
            IndexParams::new(8).with_stopping(StopPolicy::DfAbsolute(100)),
        );
        let plain = build(&r, IndexParams::new(8));
        assert!(merge_indexes(&stopped, &plain).is_err());
        assert!(merge_indexes(&plain, &stopped).is_err());
    }

    #[test]
    fn apply_stopping_matches_build_time_stopping() {
        let r = records(76);
        let policy = StopPolicy::DfAbsolute(4);
        let unstopped = build(&r, IndexParams::new(6));
        let post = apply_stopping(&unstopped, policy).unwrap();
        let reference = build(&r, IndexParams::new(6).with_stopping(policy));
        assert_eq!(post.decode_all().unwrap(), reference.decode_all().unwrap());
        assert_eq!(post.params().stopping, Some(policy));
        assert!(
            apply_stopping(&post, policy).is_err(),
            "double stopping rejected"
        );
    }
}
