//! Durability primitives shared by the on-disk formats.
//!
//! Three small, dependency-free building blocks:
//!
//! - [`Crc32`] / [`crc32`]: the standard IEEE CRC-32 (the polynomial used
//!   by gzip, zip, and PNG), hand-rolled because the workspace builds
//!   with no registry access. Every versioned file format checksums its
//!   header with it, and v3 formats carry per-section checksums too.
//! - [`CountingReader`] / [`read_exact_chunked`]: streaming-parse
//!   helpers. The counter lets parsers report the *file offset* of a
//!   violation without requiring `Seek`; chunked reading lets loaders
//!   allocate from untrusted length fields without risking a
//!   multi-gigabyte `Vec` from a corrupt 8-byte varint.
//! - [`AtomicFile`]: write-to-temp + `fsync` + atomic-rename
//!   persistence, so an interrupted build or append can never leave a
//!   torn file at the destination path — readers see either the old
//!   complete file or the new complete file, nothing in between.

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// Incremental IEEE CRC-32 hasher.
///
/// ```
/// use nucdb_index::durable::{crc32, Crc32};
/// let mut h = Crc32::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finish(), crc32(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Counting / bounded readers
// ---------------------------------------------------------------------------

/// A [`Read`] adapter that tracks how many bytes have been consumed, so
/// streaming parsers can report the file offset of a violation without
/// requiring `Seek` on the source (which would rule out pipes, faulty
/// shims, and in-memory slices).
#[derive(Debug)]
pub struct CountingReader<R> {
    inner: R,
    pos: u64,
}

impl<R: Read> CountingReader<R> {
    /// Wrap `inner`, starting the byte counter at zero.
    pub fn new(inner: R) -> CountingReader<R> {
        CountingReader { inner, pos: 0 }
    }

    /// Bytes consumed from `inner` so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Unwrap the underlying reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.pos += n as u64;
        Ok(n)
    }
}

/// Read exactly `len` bytes into a fresh `Vec`, growing it in bounded
/// chunks. `len` typically comes from an *untrusted* length field in a
/// file header; chunked growth means a corrupt length fails with
/// `UnexpectedEof` after at most one wasted chunk instead of attempting
/// a huge up-front allocation (which aborts the process on OOM — a
/// durability violation in its own right).
pub fn read_exact_chunked<R: Read>(reader: &mut R, len: usize) -> io::Result<Vec<u8>> {
    const CHUNK: usize = 64 * 1024;
    let mut out = Vec::with_capacity(len.min(CHUNK));
    while out.len() < len {
        let take = (len - out.len()).min(CHUNK);
        let start = out.len();
        out.resize(start + take, 0);
        reader.read_exact(&mut out[start..])?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Atomic persistence
// ---------------------------------------------------------------------------

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A buffered writer that makes the destination file appear atomically.
///
/// Bytes go to a uniquely named temporary file in the *same directory*
/// as the destination (rename is only atomic within a filesystem). On
/// [`commit`](AtomicFile::commit) the data is flushed and `fsync`ed,
/// the temp file is renamed over the destination, and (on unix) the
/// parent directory is `fsync`ed so the rename itself survives a crash.
/// If the `AtomicFile` is dropped without committing — including via
/// `?` on a write error — the temp file is removed and the destination
/// is left untouched.
#[derive(Debug)]
pub struct AtomicFile {
    out: Option<BufWriter<File>>,
    tmp: PathBuf,
    dest: PathBuf,
}

impl AtomicFile {
    /// Start writing a new version of `dest`.
    pub fn create(dest: &Path) -> io::Result<AtomicFile> {
        let nonce = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let mut tmp_name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "out".into());
        tmp_name.push(format!(".tmp.{}.{}", std::process::id(), nonce));
        let tmp = dest.with_file_name(tmp_name);
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            out: Some(BufWriter::new(file)),
            tmp,
            dest: dest.to_path_buf(),
        })
    }

    /// Flush, `fsync`, and atomically rename the temp file over the
    /// destination. Consumes the writer; after this returns `Ok`, the
    /// complete new file is visible at the destination path.
    pub fn commit(mut self) -> io::Result<()> {
        let out = self.out.take().expect("commit called once by construction");
        let file = out.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&self.tmp, &self.dest)?;
        #[cfg(unix)]
        if let Some(parent) = self.dest.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(d) = File::open(dir) {
                d.sync_all()?;
            }
        }
        Ok(())
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.out
            .as_mut()
            .expect("write before commit by construction")
            .write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out
            .as_mut()
            .expect("flush before commit by construction")
            .flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.out.take().is_some() {
            // Not committed: discard the partial temp file.
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Reference values from the IEEE CRC-32 used by gzip/zip/PNG.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_incremental_matches_oneshot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0, 1, 13, 500, 999, 1000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data));
        }
    }

    #[test]
    fn counting_reader_tracks_position() {
        let data = [7u8; 100];
        let mut r = CountingReader::new(&data[..]);
        let mut buf = [0u8; 30];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(r.pos(), 30);
        r.read_exact(&mut buf).unwrap();
        assert_eq!(r.pos(), 60);
    }

    #[test]
    fn chunked_read_handles_lying_lengths() {
        let data = vec![1u8; 100];
        // Claimed length far beyond what the source holds: clean EOF error,
        // no giant allocation.
        let err = read_exact_chunked(&mut &data[..], usize::MAX / 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Exact length round-trips.
        assert_eq!(read_exact_chunked(&mut &data[..], 100).unwrap(), data);
        // Multi-chunk length round-trips.
        let big = vec![9u8; 200_000];
        assert_eq!(read_exact_chunked(&mut &big[..], big.len()).unwrap(), big);
    }

    #[test]
    fn atomic_file_commit_and_abandon() {
        let dir = std::env::temp_dir().join(format!("nucdb_durable_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("target.bin");

        // Commit path: file appears with full contents.
        let mut w = AtomicFile::create(&dest).unwrap();
        w.write_all(b"generation-1").unwrap();
        w.commit().unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"generation-1");

        // Abandon path: destination untouched, temp cleaned up.
        let mut w = AtomicFile::create(&dest).unwrap();
        w.write_all(b"partial garbage").unwrap();
        drop(w);
        assert_eq!(std::fs::read(&dest).unwrap(), b"generation-1");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("target.bin")]);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
