//! Index size accounting.
//!
//! Experiments E1 (index size vs interval length), E4 (stopping) and E5
//! (codec comparison) all report index sizes; this module centralises the
//! arithmetic, including the "uncompressed equivalent" baseline the paper
//! compares compressed postings against.

/// Size and volume statistics of a built index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Records indexed.
    pub records: u64,
    /// Total bases across all records.
    pub total_bases: u64,
    /// Distinct intervals with at least one posting.
    pub distinct_intervals: u64,
    /// Total `(interval, record)` postings entries (sum of dfs).
    pub postings_entries: u64,
    /// Total stored offsets (sum of occurrence counts).
    pub total_offsets: u64,
    /// Bytes of compressed postings.
    pub blob_bytes: u64,
    /// Bytes of in-memory vocabulary.
    pub vocab_bytes: u64,
}

impl IndexStats {
    /// Total index bytes (postings + vocabulary).
    pub fn total_bytes(&self) -> u64 {
        self.blob_bytes + self.vocab_bytes
    }

    /// Bytes an uncompressed layout would need: 32-bit record id per
    /// posting, 32-bit count per posting, 32-bit offset per occurrence
    /// (the flat layout a naive implementation stores).
    pub fn uncompressed_equivalent_bytes(&self) -> u64 {
        self.postings_entries * 8 + self.total_offsets * 4
    }

    /// Compressed postings as a fraction of the uncompressed equivalent.
    pub fn compression_ratio(&self) -> f64 {
        let raw = self.uncompressed_equivalent_bytes();
        if raw == 0 {
            return 0.0;
        }
        self.blob_bytes as f64 / raw as f64
    }

    /// Index size relative to the collection it indexes (1 byte/base for
    /// the ASCII collection, the figure the paper quotes index overhead
    /// against).
    pub fn index_to_collection_ratio(&self) -> f64 {
        if self.total_bases == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.total_bases as f64
    }

    /// Mean postings-list length (document frequency) per distinct
    /// interval.
    pub fn mean_df(&self) -> f64 {
        if self.distinct_intervals == 0 {
            return 0.0;
        }
        self.postings_entries as f64 / self.distinct_intervals as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let s = IndexStats {
            records: 10,
            total_bases: 10_000,
            distinct_intervals: 100,
            postings_entries: 400,
            total_offsets: 500,
            blob_bytes: 1_000,
            vocab_bytes: 2_000,
        };
        assert_eq!(s.total_bytes(), 3_000);
        assert_eq!(s.uncompressed_equivalent_bytes(), 400 * 8 + 500 * 4);
        assert!((s.compression_ratio() - 1_000.0 / 5_200.0).abs() < 1e-12);
        assert!((s.index_to_collection_ratio() - 0.3).abs() < 1e-12);
        assert!((s.mean_df() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_finite() {
        let s = IndexStats::default();
        assert_eq!(s.compression_ratio(), 0.0);
        assert_eq!(s.index_to_collection_ratio(), 0.0);
        assert_eq!(s.mean_df(), 0.0);
    }
}
