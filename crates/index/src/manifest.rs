//! The segment manifest: the single durable source of truth for a live
//! (incrementally ingested) database directory.
//!
//! A live directory contains immutable segment files (`seg-<id>.nucidx` +
//! `seg-<id>.nucsto`) plus one `MANIFEST` naming, in order, exactly the
//! segments that constitute the database. Every flush or compaction writes
//! the segment files first, then swaps in a new manifest via
//! [`AtomicFile`]; superseded files are deleted only after the new
//! manifest is durable. A crash at any point therefore leaves either the
//! old manifest (pointing at the old, still-present files) or the new one
//! — never a torn state. Files present on disk but not referenced by the
//! manifest are *orphans*: debris from an interrupted flush, safe to
//! delete.
//!
//! ## Format (`NUCMAN01`)
//!
//! ```text
//! magic "NUCMAN01" | body_len u32le | body_crc32 u32le | body
//! body: version vu64
//!       k vu64 | stride vu64 | granularity u8 | codec u8 | storage u8
//!       segment_count vu64
//!       per segment: id vu64 | records vu64 | index_bytes vu64 | store_bytes vu64
//! ```
//!
//! The body is CRC-guarded and the file must end exactly at the body —
//! trailing bytes are a format violation. The manifest is
//! self-describing: it carries the index parameters and codec so an empty
//! live directory reopens with the configuration it was created with.
//! Stopping is deliberately absent — stopped indexes cannot be merged
//! ([`merge_indexes`](crate::merge::merge_indexes)), so live directories
//! never use it.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::compress::ListCodec;
use crate::durable::{crc32, read_exact_chunked, AtomicFile};
use crate::error::IndexError;
use crate::interval::Granularity;

/// File name of the manifest inside a live directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

const MAGIC: &[u8; 8] = b"NUCMAN01";
/// Fixed header size: magic + body_len + body_crc.
const HEADER_LEN: u64 = 16;
/// Cap on the declared body length (a manifest is tiny; anything near
/// this is corrupt).
const MAX_BODY_LEN: u32 = 64 << 20;

/// One immutable on-disk segment referenced by a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Monotonically assigned segment id; file names derive from it.
    pub id: u64,
    /// Number of records in the segment.
    pub records: u32,
    /// Size of the segment's index file in bytes (as written).
    pub index_bytes: u64,
    /// Size of the segment's store file in bytes (as written).
    pub store_bytes: u64,
}

impl SegmentMeta {
    /// File name of this segment's index (`seg-<id>.nucidx`).
    pub fn index_file(&self) -> String {
        segment_index_file(self.id)
    }

    /// File name of this segment's sequence store (`seg-<id>.nucsto`).
    pub fn store_file(&self) -> String {
        segment_store_file(self.id)
    }

    /// Total on-disk footprint of the segment.
    pub fn bytes(&self) -> u64 {
        self.index_bytes + self.store_bytes
    }
}

/// File name of segment `id`'s index file.
pub fn segment_index_file(id: u64) -> String {
    format!("seg-{id:06}.nucidx")
}

/// File name of segment `id`'s store file.
pub fn segment_store_file(id: u64) -> String {
    format!("seg-{id:06}.nucsto")
}

/// If `name` is a segment file name (`seg-<id>.nucidx` / `seg-<id>.nucsto`),
/// return its id.
pub fn parse_segment_file(name: &str) -> Option<u64> {
    let stem = name
        .strip_suffix(".nucidx")
        .or_else(|| name.strip_suffix(".nucsto"))?;
    let digits = stem.strip_prefix("seg-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Is `name` a leftover temp file from an interrupted atomic write
/// (manifest or segment)? [`AtomicFile`] temp names are the destination
/// name plus a `.tmp.<pid>.<nonce>` suffix.
pub fn is_stale_temp(name: &str) -> bool {
    let Some(pos) = name.find(".tmp.") else {
        return false;
    };
    let base = &name[..pos];
    base == MANIFEST_FILE || parse_segment_file(base).is_some()
}

/// The versioned, CRC-checksummed list of segments that constitutes a
/// live database directory. See the module docs for format and crash
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic manifest version, bumped on every save.
    pub version: u64,
    /// Interval length all segments were built with.
    pub k: usize,
    /// Extraction stride all segments were built with.
    pub stride: usize,
    /// Postings granularity of all segments.
    pub granularity: Granularity,
    /// List codec of all segments.
    pub codec: ListCodec,
    /// Storage-mode tag of all segment stores (opaque to this crate; the
    /// engine layer maps it to its `StorageMode`).
    pub storage: u8,
    /// The segments, in record-id order: segment `i` holds the records
    /// whose global ids start at the sum of earlier segments' `records`.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// An empty version-0 manifest for a new live directory.
    pub fn new(
        k: usize,
        stride: usize,
        granularity: Granularity,
        codec: ListCodec,
        storage: u8,
    ) -> Manifest {
        Manifest {
            version: 0,
            k,
            stride,
            granularity,
            codec,
            storage,
            segments: Vec::new(),
        }
    }

    /// Total records across all segments.
    pub fn total_records(&self) -> u64 {
        self.segments.iter().map(|s| u64::from(s.records)).sum()
    }

    /// Total on-disk bytes across all segments.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes()).sum()
    }

    /// Next unused segment id (one past the max referenced).
    pub fn next_segment_id(&self) -> u64 {
        self.segments.iter().map(|s| s.id + 1).max().unwrap_or(0)
    }

    /// Serialize to the full on-disk file image (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.segments.len() * 16);
        put_vu64(&mut body, self.version);
        put_vu64(&mut body, self.k as u64);
        put_vu64(&mut body, self.stride as u64);
        body.push(self.granularity.tag());
        body.push(self.codec.tag());
        body.push(self.storage);
        put_vu64(&mut body, self.segments.len() as u64);
        for seg in &self.segments {
            put_vu64(&mut body, seg.id);
            put_vu64(&mut body, u64::from(seg.records));
            put_vu64(&mut body, seg.index_bytes);
            put_vu64(&mut body, seg.store_bytes);
        }
        let mut out = Vec::with_capacity(HEADER_LEN as usize + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse a full file image produced by [`Manifest::encode`],
    /// verifying magic, CRC, and exact end-of-file.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, IndexError> {
        if bytes.len() < HEADER_LEN as usize {
            return Err(IndexError::bad_in(
                "manifest shorter than header",
                "manifest",
            ));
        }
        if &bytes[..8] != MAGIC {
            return Err(IndexError::bad_at("bad manifest magic", "manifest", 0));
        }
        let body_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if body_len > MAX_BODY_LEN {
            return Err(IndexError::bad_at(
                "manifest body length implausible",
                "manifest",
                8,
            ));
        }
        let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let body = &bytes[HEADER_LEN as usize..];
        if body.len() != body_len as usize {
            return Err(IndexError::bad_at(
                "manifest body length does not match file size",
                "manifest",
                8,
            ));
        }
        let actual_crc = crc32(body);
        if actual_crc != stored_crc {
            return Err(IndexError::checksum(
                "manifest", HEADER_LEN, stored_crc, actual_crc,
            ));
        }

        let mut cur = body;
        let version = take_vu64(&mut cur)?;
        let k = take_vu64(&mut cur)?;
        let stride = take_vu64(&mut cur)?;
        if k == 0 || k > 32 {
            return Err(IndexError::bad_in("manifest k out of range", "manifest"));
        }
        if stride == 0 {
            return Err(IndexError::bad_in("manifest stride is zero", "manifest"));
        }
        let granularity = Granularity::from_tag(take_u8(&mut cur)?)?;
        let codec = ListCodec::from_tag(take_u8(&mut cur)?)?;
        let storage = take_u8(&mut cur)?;
        let count = take_vu64(&mut cur)?;
        // Each segment entry takes at least 4 bytes; bound count by the
        // remaining body so a corrupt count can't drive a huge allocation.
        if count > cur.len() as u64 {
            return Err(IndexError::bad_in(
                "manifest segment count implausible",
                "manifest",
            ));
        }
        let mut segments: Vec<SegmentMeta> = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let id = take_vu64(&mut cur)?;
            let records = take_vu64(&mut cur)?;
            let index_bytes = take_vu64(&mut cur)?;
            let store_bytes = take_vu64(&mut cur)?;
            if records > u64::from(u32::MAX) {
                return Err(IndexError::bad_in(
                    "segment record count overflows u32",
                    "manifest",
                ));
            }
            // Ids need not be ordered (compaction splices a fresh-id
            // merged segment into list position) but must be unique —
            // file names derive from them.
            if segments.iter().any(|s: &SegmentMeta| s.id == id) {
                return Err(IndexError::bad_in("duplicate segment id", "manifest"));
            }
            segments.push(SegmentMeta {
                id,
                records: records as u32,
                index_bytes,
                store_bytes,
            });
        }
        if !cur.is_empty() {
            return Err(IndexError::bad_in(
                "trailing bytes after manifest body",
                "manifest",
            ));
        }
        Ok(Manifest {
            version,
            k: k as usize,
            stride: stride as usize,
            granularity,
            codec,
            storage,
            segments,
        })
    }

    /// Path of the manifest file inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }

    /// Durably write this manifest to `dir/MANIFEST` via write-to-temp +
    /// fsync + atomic rename. On return the manifest — and therefore the
    /// segment set it names — is crash-durable.
    pub fn save(&self, dir: &Path) -> Result<(), IndexError> {
        let mut file = AtomicFile::create(&Manifest::path_in(dir))?;
        file.write_all(&self.encode())?;
        file.commit()?;
        Ok(())
    }

    /// Load and verify `dir/MANIFEST`.
    pub fn load(dir: &Path) -> Result<Manifest, IndexError> {
        let mut file = File::open(Manifest::path_in(dir))?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN || len > HEADER_LEN + u64::from(MAX_BODY_LEN) {
            return Err(IndexError::bad_in(
                "manifest file size implausible",
                "manifest",
            ));
        }
        let bytes = read_exact_chunked(&mut file, len as usize)?;
        // Reject files with data past the declared body (decode checks the
        // slice it is handed, so hand it exactly what the file holds).
        let mut trailing = [0u8; 1];
        if file.read(&mut trailing)? != 0 {
            return Err(IndexError::bad_in(
                "trailing bytes after manifest body",
                "manifest",
            ));
        }
        Manifest::decode(&bytes)
    }

    /// Does `dir` look like a live directory (has a manifest)?
    pub fn exists_in(dir: &Path) -> bool {
        Manifest::path_in(dir).is_file()
    }

    /// Scan `dir` for files this manifest does not account for: orphaned
    /// segment files (from an interrupted flush/compaction) and stale
    /// atomic-write temps. Returns their file names, sorted.
    pub fn orphans_in(&self, dir: &Path) -> Result<Vec<String>, IndexError> {
        let mut live: Vec<String> = Vec::with_capacity(self.segments.len() * 2);
        for seg in &self.segments {
            live.push(seg.index_file());
            live.push(seg.store_file());
        }
        let mut orphans = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let is_orphan = if is_stale_temp(name) {
                true
            } else if parse_segment_file(name).is_some() {
                !live.iter().any(|f| f == name)
            } else {
                false
            };
            if is_orphan {
                orphans.push(name.to_string());
            }
        }
        orphans.sort();
        Ok(orphans)
    }
}

fn put_vu64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn take_u8(cur: &mut &[u8]) -> Result<u8, IndexError> {
    let (&first, rest) = cur
        .split_first()
        .ok_or_else(|| IndexError::bad_in("manifest body truncated", "manifest"))?;
    *cur = rest;
    Ok(first)
}

fn take_vu64(cur: &mut &[u8]) -> Result<u64, IndexError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = take_u8(cur)?;
        if shift == 63 && byte > 1 {
            return Err(IndexError::bad_in("varint overflows u64", "manifest"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(IndexError::bad_in("varint too long", "manifest"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(8, 1, Granularity::Offsets, ListCodec::Block, 1);
        m.version = 7;
        m.segments = vec![
            SegmentMeta {
                id: 0,
                records: 100,
                index_bytes: 4096,
                store_bytes: 9000,
            },
            SegmentMeta {
                id: 3,
                records: 42,
                index_bytes: 512,
                store_bytes: 700,
            },
        ];
        m
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_records(), 142);
        assert_eq!(back.next_segment_id(), 4);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("nucman-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        let back = Manifest::load(&dir).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let m = sample();
        let bytes = m.encode();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    Manifest::decode(&corrupt).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let m = sample();
        let bytes = m.encode();
        for len in 0..bytes.len() {
            assert!(
                Manifest::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(Manifest::decode(&bytes).is_err());
    }

    #[test]
    fn file_name_round_trip() {
        assert_eq!(segment_index_file(7), "seg-000007.nucidx");
        assert_eq!(parse_segment_file("seg-000007.nucidx"), Some(7));
        assert_eq!(parse_segment_file("seg-000007.nucsto"), Some(7));
        assert_eq!(parse_segment_file("seg-x.nucidx"), None);
        assert_eq!(parse_segment_file("index.nucidx"), None);
        assert!(is_stale_temp("MANIFEST.tmp.123.4"));
        assert!(is_stale_temp("seg-000001.nucidx.tmp.9.9"));
        assert!(!is_stale_temp("MANIFEST"));
        assert!(!is_stale_temp("other.tmp.1.2"));
    }

    #[test]
    fn orphan_scan() {
        let dir = std::env::temp_dir().join(format!("nucman-orph-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut m = sample();
        m.segments.truncate(1);
        for name in [
            "seg-000000.nucidx",
            "seg-000000.nucsto",
            "seg-000009.nucidx",
            "MANIFEST.tmp.1.2",
            "unrelated.txt",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let orphans = m.orphans_in(&dir).unwrap();
        assert_eq!(orphans, vec!["MANIFEST.tmp.1.2", "seg-000009.nucidx"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
