//! Decoded postings lists and the raw in-memory accumulation form.

/// One record's entry in an interval's postings list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Record id within the collection.
    pub record: u32,
    /// Ascending in-record offsets at which the interval occurs.
    pub offsets: Vec<u32>,
}

/// A fully decoded postings list for one interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PostingsList {
    /// Entries in ascending record order.
    pub entries: Vec<Posting>,
}

impl PostingsList {
    /// Number of records containing the interval (document frequency).
    pub fn df(&self) -> usize {
        self.entries.len()
    }

    /// Total occurrences across all records.
    pub fn total_occurrences(&self) -> usize {
        self.entries.iter().map(|p| p.offsets.len()).sum()
    }

    /// Internal invariants: ascending unique records, ascending unique
    /// offsets, no empty entries. Used by tests and debug assertions.
    pub fn is_well_formed(&self) -> bool {
        let records_ok = self.entries.windows(2).all(|w| w[0].record < w[1].record);
        let entries_ok = self
            .entries
            .iter()
            .all(|p| !p.offsets.is_empty() && p.offsets.windows(2).all(|w| w[0] < w[1]));
        records_ok && entries_ok
    }
}

/// Append-only raw postings under construction: flat `(record, offset)`
/// pairs in insertion order. Construction visits records in ascending id
/// order and offsets ascend within a record, so the flat form is already
/// sorted and converts to a [`PostingsList`] in one pass.
#[derive(Debug, Clone, Default)]
pub struct RawPostings {
    pairs: Vec<(u32, u32)>,
}

impl RawPostings {
    /// Append one occurrence. Callers must append in nondecreasing
    /// `(record, offset)` order (debug-asserted).
    pub fn push(&mut self, record: u32, offset: u32) {
        debug_assert!(
            self.pairs
                .last()
                .is_none_or(|&(r, o)| (r, o) < (record, offset)),
            "postings must be appended in ascending order"
        );
        self.pairs.push((record, offset));
    }

    /// Number of occurrences.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// No occurrences?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of distinct records (document frequency).
    pub fn df(&self) -> usize {
        let mut df = 0;
        let mut prev = None;
        for &(r, _) in &self.pairs {
            if prev != Some(r) {
                df += 1;
                prev = Some(r);
            }
        }
        df
    }

    /// The raw pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Group into a decoded [`PostingsList`].
    pub fn into_list(self) -> PostingsList {
        let mut entries: Vec<Posting> = Vec::new();
        for (record, offset) in self.pairs {
            match entries.last_mut() {
                Some(last) if last.record == record => last.offsets.push(offset),
                _ => entries.push(Posting {
                    record,
                    offsets: vec![offset],
                }),
            }
        }
        let list = PostingsList { entries };
        debug_assert!(list.is_well_formed());
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_grouping() {
        let mut raw = RawPostings::default();
        for (r, o) in [(0u32, 3u32), (0, 9), (2, 1), (5, 0), (5, 4), (5, 8)] {
            raw.push(r, o);
        }
        assert_eq!(raw.len(), 6);
        assert_eq!(raw.df(), 3);
        let list = raw.into_list();
        assert_eq!(list.df(), 3);
        assert_eq!(list.total_occurrences(), 6);
        assert_eq!(
            list.entries[0],
            Posting {
                record: 0,
                offsets: vec![3, 9]
            }
        );
        assert_eq!(
            list.entries[2],
            Posting {
                record: 5,
                offsets: vec![0, 4, 8]
            }
        );
        assert!(list.is_well_formed());
    }

    #[test]
    fn empty_raw() {
        let raw = RawPostings::default();
        assert!(raw.is_empty());
        assert_eq!(raw.df(), 0);
        let list = raw.into_list();
        assert_eq!(list.df(), 0);
        assert!(list.is_well_formed());
    }

    #[test]
    fn well_formedness_detects_violations() {
        let bad_order = PostingsList {
            entries: vec![
                Posting {
                    record: 5,
                    offsets: vec![1],
                },
                Posting {
                    record: 2,
                    offsets: vec![1],
                },
            ],
        };
        assert!(!bad_order.is_well_formed());
        let bad_offsets = PostingsList {
            entries: vec![Posting {
                record: 1,
                offsets: vec![4, 4],
            }],
        };
        assert!(!bad_offsets.is_well_formed());
        let empty_offsets = PostingsList {
            entries: vec![Posting {
                record: 1,
                offsets: vec![],
            }],
        };
        assert!(!empty_offsets.is_well_formed());
    }
}
