//! Index stopping: discarding high-frequency intervals.
//!
//! An interval that occurs in a large fraction of the collection's records
//! discriminates poorly between answers and non-answers, yet its postings
//! list is the longest in the index — the inverted-file analogue of text
//! stopwords. Stopping such intervals shrinks the index *and* speeds
//! coarse search (fewer postings to decode per query) at a small accuracy
//! cost; experiment **E4** measures the trade-off.

/// Which intervals to drop from the index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopPolicy {
    /// Drop intervals occurring in more than this fraction of records
    /// (0.0 drops everything, 1.0 drops nothing).
    DfFraction(f64),
    /// Drop intervals occurring in more than this many records.
    DfAbsolute(u32),
    /// Drop the `n` most frequent intervals.
    TopK(usize),
}

impl StopPolicy {
    /// Resolve the policy against per-interval document frequencies,
    /// returning a predicate value: the maximum allowed df (inclusive).
    ///
    /// `dfs` is consumed as an iterator of every interval's df; only
    /// [`StopPolicy::TopK`] actually needs it (the others compute a bound
    /// directly from `num_records`).
    pub fn df_limit(&self, num_records: u32, dfs: impl Iterator<Item = u32>) -> u32 {
        match *self {
            StopPolicy::DfFraction(frac) => {
                let frac = frac.clamp(0.0, 1.0);
                (num_records as f64 * frac).floor() as u32
            }
            StopPolicy::DfAbsolute(limit) => limit,
            StopPolicy::TopK(n) => {
                if n == 0 {
                    return u32::MAX;
                }
                // The df of the (n+1)-th most frequent interval is the
                // largest df we keep.
                let mut all: Vec<u32> = dfs.collect();
                if n >= all.len() {
                    return 0; // drop everything
                }
                all.sort_unstable_by(|a, b| b.cmp(a));
                // Keep dfs at or below the (n+1)-th largest; intervals
                // tied with that cutoff are kept (simple and stable).
                all[n]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_limit() {
        let p = StopPolicy::DfFraction(0.1);
        assert_eq!(p.df_limit(1000, std::iter::empty()), 100);
        assert_eq!(
            StopPolicy::DfFraction(1.0).df_limit(50, std::iter::empty()),
            50
        );
        assert_eq!(
            StopPolicy::DfFraction(0.0).df_limit(50, std::iter::empty()),
            0
        );
        // Out-of-range fractions are clamped.
        assert_eq!(
            StopPolicy::DfFraction(2.0).df_limit(50, std::iter::empty()),
            50
        );
    }

    #[test]
    fn absolute_limit() {
        assert_eq!(
            StopPolicy::DfAbsolute(7).df_limit(1000, std::iter::empty()),
            7
        );
    }

    #[test]
    fn top_k_limit() {
        let dfs = [5u32, 100, 3, 80, 7, 90];
        // Dropping the top 2 (100, 90): limit is the 3rd largest, 80.
        assert_eq!(StopPolicy::TopK(2).df_limit(1000, dfs.iter().copied()), 80);
        // Dropping none.
        assert_eq!(
            StopPolicy::TopK(0).df_limit(1000, dfs.iter().copied()),
            u32::MAX
        );
        // Dropping at least as many as exist: everything goes.
        assert_eq!(StopPolicy::TopK(6).df_limit(1000, dfs.iter().copied()), 0);
        assert_eq!(StopPolicy::TopK(99).df_limit(1000, dfs.iter().copied()), 0);
    }
}
