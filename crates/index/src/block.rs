//! Block-structured bitpacked postings: the fast-decode list tier.
//!
//! The bit-serial codecs in [`crate::compress`] are the space-optimal
//! choice from the paper, but they decode one bit at a time. This module
//! trades a little space for a decode loop the compiler can unroll and
//! vectorise, plus *skip entries* that let the coarse accumulator refuse
//! whole blocks it can prove are hopeless. On disk this tier is the
//! `NUCIDX04` format (see [`crate::disk`]).
//!
//! Per-list layout:
//!
//! ```text
//! list       := skip_table block*
//! skip_table := (max_record:u32le end:u32le crc:u32le) * num_blocks
//! block      := id_width:u8 count_width:u8 [off_width:u8]
//!               packed id gaps   packed (count-1)s   [packed offset gaps]
//! ```
//!
//! `num_blocks = ceil(df / 128)`; `end` is the byte offset one past the
//! block's payload relative to the first payload byte; `crc` is the IEEE
//! CRC-32 of the payload bytes. The `off_width` byte and the offset
//! section exist only at [`Granularity::Offsets`].
//!
//! Values are packed LSB-first in the classic horizontal layout: 32
//! values per group of `width` little-endian 32-bit words, arrays padded
//! with zeros to whole groups. Record gaps are `record − prev − 1`
//! chained across the whole list, but a block's seed `prev` is the
//! *previous skip entry's* `max_record`, so any block decodes without
//! touching the ones before it. Offsets are gap-coded per record exactly
//! like the bit-serial codecs.
//!
//! Decoding verifies each block's CRC just before unpacking it, so a
//! point corruption costs one block, not the list, and blocks the
//! visitor skips are never even checksummed. The unpack kernel is one
//! monomorphised straight-line loop per width — shifts and masks over
//! word loads, no per-bit work, no data-dependent branches.

use crate::compress::PostingsVisitor;
use crate::durable::crc32;
use crate::error::IndexError;
use crate::interval::Granularity;
use crate::postings::PostingsList;

/// Postings per block.
pub const BLOCK_LEN: usize = 128;
/// Bytes per skip entry: max record id, end offset, CRC-32.
pub const SKIP_ENTRY_BYTES: usize = 12;
/// Values per packed group (one group occupies `width` u32 words).
const LANES: usize = 32;

/// Byte length of the skip table fronting a block-coded list of `df`
/// postings.
pub fn skip_table_len(df: u32) -> usize {
    (df as usize).div_ceil(BLOCK_LEN) * SKIP_ENTRY_BYTES
}

/// Work counters from one streamed block-list decode.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BlockDecodeStats {
    /// Record ids actually unpacked (skipped blocks excluded).
    pub ids_decoded: u64,
    /// Blocks CRC-verified and unpacked.
    pub blocks_decoded: u32,
    /// Blocks refused by the visitor's `skip_block`.
    pub blocks_skipped: u32,
}

/// Smallest bit width that can hold `max`.
fn width_for(max: u32) -> u8 {
    (32 - max.leading_zeros()) as u8
}

/// Packed bytes for `n` values at `width` bits, padded to whole groups.
fn packed_len(width: u8, n: u64) -> u64 {
    n.div_ceil(LANES as u64) * width as u64 * 4
}

/// Pack 32 `width`-bit values into `width` little-endian u32 words.
fn pack_group(width: u8, values: &[u32; LANES], out: &mut Vec<u8>) {
    let width = width as u64;
    let mut acc = 0u64;
    let mut bits = 0u64;
    for &v in values {
        acc |= (v as u64) << bits;
        bits += width;
        while bits >= 32 {
            out.extend_from_slice(&(acc as u32).to_le_bytes());
            acc >>= 32;
            bits -= 32;
        }
    }
    debug_assert_eq!(bits, 0, "32 values at any width fill whole words");
}

/// Pack a value array (any length) as zero-padded 32-value groups.
fn pack_values(width: u8, values: &[u32], out: &mut Vec<u8>) {
    let mut group = [0u32; LANES];
    for chunk in values.chunks(LANES) {
        group[..chunk.len()].copy_from_slice(chunk);
        group[chunk.len()..].fill(0);
        pack_group(width, &group, out);
    }
}

/// Unpack one 32-value group packed at constant width `W` from `4*W`
/// bytes. With `W` a compile-time constant the loop fully unrolls into
/// straight-line shifts and masks over unaligned word loads — every
/// `if` below is decided per-lane at compile time, so the generated code
/// is branchless and autovectorisable.
fn unpack_group<const W: u32>(bytes: &[u8], out: &mut [u32; LANES]) {
    if W == 0 {
        out.fill(0);
        return;
    }
    let mask: u32 = if W == 32 { u32::MAX } else { (1u32 << W) - 1 };
    let bytes = &bytes[..4 * W as usize];
    let word = |i: usize| u32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().unwrap());
    for (i, lane) in out.iter_mut().enumerate() {
        let bit = i * W as usize;
        let w = bit >> 5;
        let s = (bit & 31) as u32;
        let mut v = word(w) >> s;
        if s + W > 32 {
            v |= word(w + 1) << (32 - s);
        }
        *lane = v & mask;
    }
}

/// Width dispatch for [`unpack_group`]: one monomorphised unpacker per
/// width, selected by a single match.
fn unpack_group_dyn(width: u8, bytes: &[u8], out: &mut [u32; LANES]) {
    macro_rules! dispatch {
        ($($w:literal)*) => {
            match width as u32 {
                $($w => unpack_group::<$w>(bytes, out),)*
                _ => unreachable!("width validated <= 32"),
            }
        };
    }
    dispatch!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23
              24 25 26 27 28 29 30 31 32)
}

/// Unpack `n <= BLOCK_LEN` values from zero-padded groups into
/// `out[..n]` (the pad lanes beyond `n` are also written, with zeros).
fn unpack_values(width: u8, bytes: &[u8], n: usize, out: &mut [u32; BLOCK_LEN]) {
    let group_bytes = width as usize * 4;
    for g in 0..n.div_ceil(LANES) {
        let lanes: &mut [u32; LANES] = (&mut out[g * LANES..(g + 1) * LANES])
            .try_into()
            .expect("LANES-sized chunk");
        unpack_group_dyn(width, &bytes[g * group_bytes..], lanes);
    }
}

/// Sequential value reader over a packed section, unpacking one group at
/// a time into a lane buffer. Offset sections can hold far more than
/// [`BLOCK_LEN`] values (one per occurrence), so they stream through
/// this instead of a fixed block array.
struct GroupReader<'a> {
    bytes: &'a [u8],
    width: u8,
    lanes: [u32; LANES],
    pos: usize,
    group: usize,
}

impl<'a> GroupReader<'a> {
    fn new(width: u8, bytes: &'a [u8]) -> GroupReader<'a> {
        GroupReader {
            bytes,
            width,
            lanes: [0; LANES],
            pos: LANES,
            group: 0,
        }
    }

    /// Next value. The caller must not read past the section's padded
    /// capacity (enforced by the block's exact-length check).
    #[inline]
    fn next(&mut self) -> u32 {
        if self.pos == LANES {
            let start = self.group * self.width as usize * 4;
            unpack_group_dyn(self.width, &self.bytes[start..], &mut self.lanes);
            self.group += 1;
            self.pos = 0;
        }
        let v = self.lanes[self.pos];
        self.pos += 1;
        v
    }
}

/// Encode one list in the block layout. [`Granularity::Records`] drops
/// the offset sections. Unlike the Golomb tiers the block codec needs no
/// record-length table: widths are stored per block, never derived.
pub(crate) fn encode_block_postings(list: &PostingsList, granularity: Granularity) -> Vec<u8> {
    let df = list.entries.len();
    let num_blocks = df.div_ceil(BLOCK_LEN);
    let mut out = vec![0u8; num_blocks * SKIP_ENTRY_BYTES];
    let payload_start = out.len();

    let mut ids: Vec<u32> = Vec::with_capacity(BLOCK_LEN);
    let mut counts: Vec<u32> = Vec::with_capacity(BLOCK_LEN);
    let mut offs: Vec<u32> = Vec::new();
    let mut prev_record: i64 = -1;
    for (b, block) in list.entries.chunks(BLOCK_LEN).enumerate() {
        ids.clear();
        counts.clear();
        offs.clear();
        for posting in block {
            ids.push((posting.record as i64 - prev_record - 1) as u32);
            prev_record = posting.record as i64;
            counts.push(posting.offsets.len() as u32 - 1);
            if granularity == Granularity::Offsets {
                let mut prev_off: i64 = -1;
                for &off in &posting.offsets {
                    offs.push((off as i64 - prev_off - 1) as u32);
                    prev_off = off as i64;
                }
            }
        }
        let id_w = width_for(ids.iter().copied().max().unwrap_or(0));
        let count_w = width_for(counts.iter().copied().max().unwrap_or(0));
        let block_start = out.len();
        out.push(id_w);
        out.push(count_w);
        if granularity == Granularity::Offsets {
            let off_w = width_for(offs.iter().copied().max().unwrap_or(0));
            out.push(off_w);
            pack_values(id_w, &ids, &mut out);
            pack_values(count_w, &counts, &mut out);
            pack_values(off_w, &offs, &mut out);
        } else {
            pack_values(id_w, &ids, &mut out);
            pack_values(count_w, &counts, &mut out);
        }
        let end = (out.len() - payload_start) as u32;
        let crc = crc32(&out[block_start..]);
        let entry = &mut out[b * SKIP_ENTRY_BYTES..(b + 1) * SKIP_ENTRY_BYTES];
        entry[0..4].copy_from_slice(&(prev_record as u32).to_le_bytes());
        entry[4..8].copy_from_slice(&end.to_le_bytes());
        entry[8..12].copy_from_slice(&crc.to_le_bytes());
    }
    out
}

fn read_skip_entry(bytes: &[u8], b: usize) -> (u32, usize, u32) {
    let entry = &bytes[b * SKIP_ENTRY_BYTES..(b + 1) * SKIP_ENTRY_BYTES];
    (
        u32::from_le_bytes(entry[0..4].try_into().unwrap()),
        u32::from_le_bytes(entry[4..8].try_into().unwrap()) as usize,
        u32::from_le_bytes(entry[8..12].try_into().unwrap()),
    )
}

/// Stream one block-coded list through `visitor`.
///
/// With `emit_offsets` the visitor sees `(record, offset)` per occurrence
/// (offset granularity only); otherwise `(record, count)` per record —
/// and at offset granularity the offset sections are *not unpacked at
/// all*, the length-delimited layout just steps over them. The visitor's
/// `skip_block(lo, hi)` is consulted per block before CRC verification
/// and unpacking; `lo..=hi` bounds every record id the block can hold.
///
/// Corruption offsets in errors are relative to the list's first byte;
/// callers that know the list's file position rebase them (see
/// [`IndexError::with_base_offset`]). The record-length table may be
/// shorter than the id space (synthetic full-universe tests); counts and
/// offsets are validated whenever a length is known.
pub(crate) fn decode_block_stream(
    bytes: &[u8],
    df: u32,
    num_records: u32,
    record_lens: &[u32],
    granularity: Granularity,
    emit_offsets: bool,
    visitor: &mut dyn PostingsVisitor,
) -> Result<BlockDecodeStats, IndexError> {
    if emit_offsets && granularity == Granularity::Records {
        return Err(IndexError::Unsupported(
            "record-granularity list stores no offsets",
        ));
    }
    let mut stats = BlockDecodeStats::default();
    let num_blocks = (df as usize).div_ceil(BLOCK_LEN);
    let skip_len = num_blocks * SKIP_ENTRY_BYTES;
    if bytes.len() < skip_len {
        return Err(IndexError::bad_format(
            "block list shorter than its skip table",
        ));
    }
    if num_blocks == 0 {
        if !bytes.is_empty() {
            return Err(IndexError::bad_format("trailing bytes in empty block list"));
        }
        return Ok(stats);
    }
    let payload = &bytes[skip_len..];
    let width_bytes = if granularity == Granularity::Offsets {
        3
    } else {
        2
    };

    let mut idbuf = [0u32; BLOCK_LEN];
    let mut countbuf = [0u32; BLOCK_LEN];

    let mut prev_record: i64 = -1;
    let mut block_start = 0usize;
    let mut remaining = df as usize;
    for b in 0..num_blocks {
        let (max_record, end, expected_crc) = read_skip_entry(bytes, b);
        if end <= block_start || end > payload.len() {
            return Err(IndexError::bad_format("block extent out of order"));
        }
        if b + 1 == num_blocks && end != payload.len() {
            return Err(IndexError::bad_format("trailing bytes after last block"));
        }
        if max_record as u64 >= num_records as u64 || max_record as i64 <= prev_record {
            return Err(IndexError::bad_format("block max record out of range"));
        }
        let n = remaining.min(BLOCK_LEN);
        remaining -= n;
        if visitor.skip_block((prev_record + 1) as u32, max_record) {
            stats.blocks_skipped += 1;
            prev_record = max_record as i64;
            block_start = end;
            continue;
        }

        let blk = &payload[block_start..end];
        let actual_crc = crc32(blk);
        if actual_crc != expected_crc {
            return Err(IndexError::checksum(
                "block",
                (skip_len + block_start) as u64,
                expected_crc,
                actual_crc,
            ));
        }
        if blk.len() < width_bytes {
            return Err(IndexError::bad_format("block too short for its widths"));
        }
        let id_w = blk[0];
        let count_w = blk[1];
        let off_w = if width_bytes == 3 { blk[2] } else { 0 };
        if id_w > 32 || count_w > 32 || off_w > 32 {
            return Err(IndexError::bad_format("block width exceeds 32 bits"));
        }
        let id_bytes = packed_len(id_w, n as u64) as usize;
        let count_bytes = packed_len(count_w, n as u64) as usize;
        let fixed = width_bytes + id_bytes + count_bytes;
        if blk.len() < fixed {
            return Err(IndexError::bad_format(
                "block shorter than its packed sections",
            ));
        }

        unpack_values(id_w, &blk[width_bytes..], n, &mut idbuf);
        let mut prev = prev_record;
        for gap in idbuf.iter_mut().take(n) {
            let record = prev + 1 + *gap as i64;
            if record >= num_records as i64 {
                return Err(IndexError::bad_format("decoded record id out of range"));
            }
            *gap = record as u32;
            prev = record;
        }
        if prev != max_record as i64 {
            return Err(IndexError::bad_format(
                "block contents disagree with skip entry",
            ));
        }

        unpack_values(count_w, &blk[width_bytes + id_bytes..], n, &mut countbuf);
        let mut total_offs = 0u64;
        for i in 0..n {
            let count = countbuf[i] as u64 + 1;
            let len = record_lens
                .get(idbuf[i] as usize)
                .copied()
                .unwrap_or(u32::MAX) as u64;
            if count > len.max(1) {
                return Err(IndexError::bad_format("offset count exceeds record length"));
            }
            countbuf[i] = count as u32;
            total_offs += count;
        }

        if granularity == Granularity::Offsets {
            let off_bytes = packed_len(off_w, total_offs);
            if blk.len() as u64 != fixed as u64 + off_bytes {
                return Err(IndexError::bad_format("block offset section missized"));
            }
            if emit_offsets {
                let mut reader = GroupReader::new(off_w, &blk[fixed..]);
                for i in 0..n {
                    let record = idbuf[i];
                    let len = record_lens
                        .get(record as usize)
                        .copied()
                        .unwrap_or(u32::MAX);
                    let mut prev_off: i64 = -1;
                    for _ in 0..countbuf[i] {
                        let off = prev_off + 1 + reader.next() as i64;
                        if off >= len.max(1) as i64 {
                            return Err(IndexError::bad_format("decoded offset out of range"));
                        }
                        visitor.visit(record, off as u32);
                        prev_off = off;
                    }
                }
            } else {
                for i in 0..n {
                    visitor.visit(idbuf[i], countbuf[i]);
                }
            }
        } else {
            if blk.len() != fixed {
                return Err(IndexError::bad_format("trailing bytes in block"));
            }
            for i in 0..n {
                visitor.visit(idbuf[i], countbuf[i]);
            }
        }

        stats.blocks_decoded += 1;
        stats.ids_decoded += n as u64;
        prev_record = max_record as i64;
        block_start = end;
    }
    Ok(stats)
}

/// Verify a block list's structure and every block CRC without unpacking
/// anything — the whole-file load check. Offsets in errors are relative
/// to the list's first byte.
pub(crate) fn verify_block_list(bytes: &[u8], df: u32) -> Result<(), IndexError> {
    let num_blocks = (df as usize).div_ceil(BLOCK_LEN);
    let skip_len = num_blocks * SKIP_ENTRY_BYTES;
    if bytes.len() < skip_len {
        return Err(IndexError::bad_format(
            "block list shorter than its skip table",
        ));
    }
    if num_blocks == 0 {
        if !bytes.is_empty() {
            return Err(IndexError::bad_format("trailing bytes in empty block list"));
        }
        return Ok(());
    }
    let payload = &bytes[skip_len..];
    let mut block_start = 0usize;
    for b in 0..num_blocks {
        let (_, end, expected_crc) = read_skip_entry(bytes, b);
        if end <= block_start || end > payload.len() {
            return Err(IndexError::bad_format("block extent out of order"));
        }
        if b + 1 == num_blocks && end != payload.len() {
            return Err(IndexError::bad_format("trailing bytes after last block"));
        }
        let blk = &payload[block_start..end];
        let actual_crc = crc32(blk);
        if actual_crc != expected_crc {
            return Err(IndexError::checksum(
                "block",
                (skip_len + block_start) as u64,
                expected_crc,
                actual_crc,
            ));
        }
        block_start = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::Posting;

    /// A closure visitor that never skips.
    struct Collect(Vec<(u32, u32)>);
    impl PostingsVisitor for Collect {
        fn visit(&mut self, record: u32, value: u32) {
            self.0.push((record, value));
        }
    }

    /// A visitor that skips blocks whose range lies in `skip_above..`.
    struct SkipAbove {
        seen: Vec<(u32, u32)>,
        skip_above: u32,
    }
    impl PostingsVisitor for SkipAbove {
        fn visit(&mut self, record: u32, value: u32) {
            self.seen.push((record, value));
        }
        fn skip_block(&mut self, lo: u32, _hi: u32) -> bool {
            lo > self.skip_above
        }
    }

    #[test]
    fn pack_unpack_round_trips_every_width() {
        for width in 0u8..=32 {
            let max = if width == 0 {
                0
            } else {
                (((1u64 << width) - 1) & u32::MAX as u64) as u32
            };
            let values: [u32; LANES] = std::array::from_fn(|i| {
                // Mix extremes and mid-range values.
                match i % 4 {
                    0 => max,
                    1 => 0,
                    2 => max / 2,
                    _ => (i as u32).wrapping_mul(2_654_435_761).min(max),
                }
            });
            let mut packed = Vec::new();
            pack_group(width, &values, &mut packed);
            assert_eq!(packed.len(), width as usize * 4, "width {width}");
            let mut back = [0u32; LANES];
            unpack_group_dyn(width, &packed, &mut back);
            assert_eq!(back, values, "width {width}");
        }
    }

    fn multi_block_list(df: usize) -> PostingsList {
        PostingsList {
            entries: (0..df as u32)
                .map(|i| Posting {
                    record: i * 3 + (i % 3),
                    offsets: (0..(i % 4) + 1).map(|j| i % 90 + j * 7).collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips_multiple_blocks() {
        for df in [1usize, 127, 128, 129, 400] {
            let list = multi_block_list(df);
            let num_records = 4096;
            let lens = vec![1024u32; num_records as usize];
            let bytes = encode_block_postings(&list, Granularity::Offsets);
            assert!(bytes.len() >= skip_table_len(df as u32), "df {df}");
            let mut v = Collect(Vec::new());
            let stats = decode_block_stream(
                &bytes,
                df as u32,
                num_records,
                &lens,
                Granularity::Offsets,
                true,
                &mut v,
            )
            .unwrap();
            let expect: Vec<(u32, u32)> = list
                .entries
                .iter()
                .flat_map(|p| p.offsets.iter().map(|&o| (p.record, o)))
                .collect();
            assert_eq!(v.0, expect, "df {df}");
            assert_eq!(stats.ids_decoded, df as u64);
            assert_eq!(stats.blocks_decoded as usize, df.div_ceil(BLOCK_LEN));
            assert_eq!(stats.blocks_skipped, 0);
        }
    }

    #[test]
    fn counts_decode_skips_offset_sections() {
        let list = multi_block_list(300);
        let lens = vec![1024u32; 4096];
        let bytes = encode_block_postings(&list, Granularity::Offsets);
        let mut v = Collect(Vec::new());
        decode_block_stream(
            &bytes,
            300,
            4096,
            &lens,
            Granularity::Offsets,
            false,
            &mut v,
        )
        .unwrap();
        let expect: Vec<(u32, u32)> = list
            .entries
            .iter()
            .map(|p| (p.record, p.offsets.len() as u32))
            .collect();
        assert_eq!(v.0, expect);
    }

    #[test]
    fn skipping_blocks_preserves_later_blocks() {
        let list = multi_block_list(400);
        let lens = vec![1024u32; 4096];
        let bytes = encode_block_postings(&list, Granularity::Offsets);
        // Skip every block whose lowest possible record exceeds the first
        // block's range: blocks 2..4 are refused, blocks 0..2 decode.
        let boundary = list.entries[2 * BLOCK_LEN - 1].record;
        let mut v = SkipAbove {
            seen: Vec::new(),
            skip_above: boundary,
        };
        let stats =
            decode_block_stream(&bytes, 400, 4096, &lens, Granularity::Offsets, true, &mut v)
                .unwrap();
        assert_eq!(stats.blocks_skipped, 2);
        assert_eq!(stats.blocks_decoded, 2);
        assert_eq!(stats.ids_decoded, 2 * BLOCK_LEN as u64);
        let expect: Vec<(u32, u32)> = list
            .entries
            .iter()
            .take(2 * BLOCK_LEN)
            .flat_map(|p| p.offsets.iter().map(|&o| (p.record, o)))
            .collect();
        assert_eq!(v.seen, expect);
    }

    #[test]
    fn corrupt_block_payload_names_the_block() {
        let list = multi_block_list(300);
        let lens = vec![1024u32; 4096];
        let mut bytes = encode_block_postings(&list, Granularity::Offsets);
        let skip_len = skip_table_len(300);
        // Flip a byte in the second block's payload.
        let (_, first_end, _) = read_skip_entry(&bytes, 0);
        let victim = skip_len + first_end + 4;
        bytes[victim] ^= 0x10;
        let mut v = Collect(Vec::new());
        match decode_block_stream(&bytes, 300, 4096, &lens, Granularity::Offsets, true, &mut v) {
            Err(IndexError::Corruption {
                section, offset, ..
            }) => {
                assert_eq!(section, "block");
                assert_eq!(offset, (skip_len + first_end) as u64);
            }
            other => panic!("expected block corruption, got {other:?}"),
        }
        // The first block's postings were already streamed (callers must
        // treat visited data as void on Err) — and verify rejects too.
        assert!(verify_block_list(&bytes, 300).is_err());
    }

    #[test]
    fn every_truncation_errors_cleanly() {
        let list = multi_block_list(260);
        let lens = vec![1024u32; 4096];
        let bytes = encode_block_postings(&list, Granularity::Offsets);
        for cut in 0..bytes.len() {
            let mut v = Collect(Vec::new());
            let result = decode_block_stream(
                &bytes[..cut],
                260,
                4096,
                &lens,
                Granularity::Offsets,
                true,
                &mut v,
            );
            assert!(result.is_err(), "cut {cut} decoded");
            assert!(verify_block_list(&bytes[..cut], 260).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn ids_at_the_top_of_the_u32_range_round_trip() {
        // num_records = u32::MAX forces 32-bit gap widths; the length
        // table intentionally doesn't span the id space (counts are then
        // unvalidated, by documented design).
        let list = PostingsList {
            entries: vec![
                Posting {
                    record: 0,
                    offsets: vec![0, 3],
                },
                Posting {
                    record: u32::MAX - 1,
                    offsets: vec![7],
                },
            ],
        };
        let bytes = encode_block_postings(&list, Granularity::Offsets);
        let mut v = Collect(Vec::new());
        decode_block_stream(
            &bytes,
            2,
            u32::MAX,
            &[16, 16],
            Granularity::Offsets,
            true,
            &mut v,
        )
        .unwrap();
        assert_eq!(v.0, vec![(0, 0), (0, 3), (u32::MAX - 1, 7)]);
    }

    #[test]
    fn records_granularity_has_no_offset_sections() {
        let list = multi_block_list(200);
        let with_offsets = encode_block_postings(&list, Granularity::Offsets);
        let records_only = encode_block_postings(&list, Granularity::Records);
        assert!(records_only.len() < with_offsets.len());
        let lens = vec![1024u32; 4096];
        let mut v = Collect(Vec::new());
        decode_block_stream(
            &records_only,
            200,
            4096,
            &lens,
            Granularity::Records,
            false,
            &mut v,
        )
        .unwrap();
        let expect: Vec<(u32, u32)> = list
            .entries
            .iter()
            .map(|p| (p.record, p.offsets.len() as u32))
            .collect();
        assert_eq!(v.0, expect);
        // Asking a records-granularity list for offsets is refused.
        let mut v = Collect(Vec::new());
        assert!(matches!(
            decode_block_stream(
                &records_only,
                200,
                4096,
                &lens,
                Granularity::Records,
                true,
                &mut v
            ),
            Err(IndexError::Unsupported(_))
        ));
    }
}
