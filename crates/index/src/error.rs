//! Error type for index construction and access.

use std::fmt;
use std::io;

use nucdb_codec::CodecError;

/// Errors from building, serializing, or reading an index.
#[derive(Debug)]
pub enum IndexError {
    /// A compressed list or index file failed to decode.
    Codec(CodecError),
    /// The index file has a bad magic number, version, or structure.
    BadFormat(&'static str),
    /// A record id or interval code out of range for this index.
    OutOfRange(&'static str),
    /// The operation is not supported by this index's configuration
    /// (e.g. offset-dependent access to a record-granularity index).
    Unsupported(&'static str),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Codec(e) => write!(f, "postings decode failed: {e}"),
            IndexError::BadFormat(what) => write!(f, "bad index format: {what}"),
            IndexError::OutOfRange(what) => write!(f, "out of range: {what}"),
            IndexError::Unsupported(what) => write!(f, "unsupported: {what}"),
            IndexError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Codec(e) => Some(e),
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for IndexError {
    fn from(e: CodecError) -> Self {
        IndexError::Codec(e)
    }
}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(IndexError::BadFormat("magic").to_string().contains("magic"));
        assert!(IndexError::from(CodecError::UnexpectedEnd)
            .to_string()
            .contains("decode"));
        assert!(IndexError::OutOfRange("record")
            .to_string()
            .contains("record"));
    }

    #[test]
    fn sources() {
        use std::error::Error;
        assert!(IndexError::from(CodecError::UnexpectedEnd)
            .source()
            .is_some());
        assert!(IndexError::BadFormat("x").source().is_none());
    }
}
