//! Error type for index construction and access.

use std::fmt;
use std::io;

use nucdb_codec::CodecError;

/// A structural format violation, with enough context to locate it: the
/// section of the file being parsed and (when known) the byte offset at
/// which the violation was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatViolation {
    /// What was wrong.
    pub what: &'static str,
    /// The file section being parsed ("header", "vocabulary", "list", …).
    pub section: &'static str,
    /// Byte offset within the file where the violation was detected,
    /// when the parser had file context.
    pub offset: Option<u64>,
}

impl fmt::Display for FormatViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(offset) => write!(
                f,
                "{} (section {:?}, byte {offset})",
                self.what, self.section
            ),
            None => write!(f, "{} (section {:?})", self.what, self.section),
        }
    }
}

/// Errors from building, serializing, or reading an index.
#[derive(Debug)]
pub enum IndexError {
    /// A compressed list or index file failed to decode.
    Codec(CodecError),
    /// The index file has a bad magic number, version, or structure.
    BadFormat(FormatViolation),
    /// A stored checksum did not match the bytes read: the file is
    /// corrupt (bit rot, torn write, or tampering) even though it is
    /// structurally parseable.
    Corruption {
        /// The file section whose checksum failed.
        section: &'static str,
        /// Byte offset of the corrupt region within the file.
        offset: u64,
        /// The checksum stored in the file.
        expected: u32,
        /// The checksum of the bytes actually read.
        actual: u32,
    },
    /// A record id or interval code out of range for this index.
    OutOfRange(&'static str),
    /// The operation is not supported by this index's configuration
    /// (e.g. offset-dependent access to a record-granularity index).
    Unsupported(&'static str),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl IndexError {
    /// A [`IndexError::BadFormat`] without file context (decode-layer
    /// violations detected on an already-fetched byte slice).
    pub fn bad_format(what: &'static str) -> IndexError {
        IndexError::BadFormat(FormatViolation {
            what,
            section: "postings",
            offset: None,
        })
    }

    /// A [`IndexError::BadFormat`] in `section` with no byte offset
    /// (the violation concerns a whole region, not a position).
    pub fn bad_in(what: &'static str, section: &'static str) -> IndexError {
        IndexError::BadFormat(FormatViolation {
            what,
            section,
            offset: None,
        })
    }

    /// A [`IndexError::BadFormat`] locating the violation at `offset`
    /// within `section`.
    pub fn bad_at(what: &'static str, section: &'static str, offset: u64) -> IndexError {
        IndexError::BadFormat(FormatViolation {
            what,
            section,
            offset: Some(offset),
        })
    }

    /// A checksum-mismatch [`IndexError::Corruption`].
    pub fn checksum(section: &'static str, offset: u64, expected: u32, actual: u32) -> IndexError {
        IndexError::Corruption {
            section,
            offset,
            expected,
            actual,
        }
    }

    /// Rebase a [`IndexError::Corruption`] offset by `base`: decode-layer
    /// checks report offsets relative to the byte slice they were handed,
    /// and callers that know the slice's file position lift them to
    /// absolute file offsets. Other variants pass through unchanged.
    pub fn with_base_offset(self, base: u64) -> IndexError {
        match self {
            IndexError::Corruption {
                section,
                offset,
                expected,
                actual,
            } => IndexError::Corruption {
                section,
                offset: base + offset,
                expected,
                actual,
            },
            other => other,
        }
    }

    /// Is this error evidence of on-disk corruption (as opposed to API
    /// misuse or a transient environment failure)? Covers checksum
    /// mismatches, structural format violations, postings that fail to
    /// decode, and truncated / invalid-data I/O errors.
    pub fn is_corruption(&self) -> bool {
        match self {
            IndexError::Corruption { .. } | IndexError::BadFormat(_) | IndexError::Codec(_) => true,
            IndexError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
            ),
            _ => false,
        }
    }
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Codec(e) => write!(f, "postings decode failed: {e}"),
            IndexError::BadFormat(violation) => write!(f, "bad index format: {violation}"),
            IndexError::Corruption {
                section,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "index corruption detected: checksum mismatch in section {section:?} at byte \
                 {offset} (stored {expected:#010x}, computed {actual:#010x})"
            ),
            IndexError::OutOfRange(what) => write!(f, "out of range: {what}"),
            IndexError::Unsupported(what) => write!(f, "unsupported: {what}"),
            IndexError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Codec(e) => Some(e),
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for IndexError {
    fn from(e: CodecError) -> Self {
        IndexError::Codec(e)
    }
}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(IndexError::bad_format("magic")
            .to_string()
            .contains("magic"));
        assert!(IndexError::from(CodecError::UnexpectedEnd)
            .to_string()
            .contains("decode"));
        assert!(IndexError::OutOfRange("record")
            .to_string()
            .contains("record"));
    }

    #[test]
    fn bad_format_carries_section_and_offset() {
        let e = IndexError::bad_at("zero stride", "header", 17);
        let text = e.to_string();
        assert!(text.contains("zero stride"), "{text}");
        assert!(text.contains("header"), "{text}");
        assert!(text.contains("17"), "{text}");
    }

    #[test]
    fn corruption_reports_offsets_and_checksums() {
        let e = IndexError::checksum("list", 4096, 0xDEADBEEF, 0x12345678);
        let text = e.to_string();
        assert!(text.contains("4096"), "{text}");
        assert!(text.contains("0xdeadbeef"), "{text}");
        assert!(text.contains("list"), "{text}");
        assert!(e.is_corruption());
    }

    #[test]
    fn corruption_classification() {
        assert!(IndexError::bad_format("x").is_corruption());
        assert!(IndexError::from(CodecError::UnexpectedEnd).is_corruption());
        assert!(
            IndexError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")).is_corruption()
        );
        assert!(!IndexError::Unsupported("x").is_corruption());
        assert!(
            !IndexError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "no")).is_corruption()
        );
    }

    #[test]
    fn sources() {
        use std::error::Error;
        assert!(IndexError::from(CodecError::UnexpectedEnd)
            .source()
            .is_some());
        assert!(IndexError::bad_format("x").source().is_none());
    }
}
