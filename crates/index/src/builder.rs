//! Index construction.
//!
//! Three build paths, all producing the same [`CompressedIndex`]:
//!
//! * [`IndexBuilder`] — single-pass, in-memory: extract intervals record
//!   by record into per-interval postings, then sort, stop, and encode.
//! * [`build_chunked`] — the external build: the collection is processed
//!   in bounded-memory chunks, each chunk's postings are spilled to a
//!   sorted *run* file, and the runs are merged into the final index.
//!   Because chunks partition records in ascending id order, same-interval
//!   lists from successive runs concatenate without re-sorting. This is
//!   the build the paper's setting requires (the collection does not fit
//!   in memory).
//! * [`build_parallel`] — chunk building fanned out across threads with
//!   `crossbeam`, merged in memory; equivalent output, faster wall-clock.

use std::collections::HashMap;
use std::fs::File;
use std::hash::{BuildHasherDefault, Hasher};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use nucdb_seq::Base;

use crate::compress::{CompressedIndex, ListCodec};
use crate::error::IndexError;
use crate::interval::IndexParams;
use crate::postings::{PostingsList, RawPostings};

/// Multiplicative hasher for interval codes (trusted integer keys; the
/// default SipHash costs more than the table probe it guards).
#[derive(Default)]
pub struct CodeHasher {
    state: u64,
}

impl Hasher for CodeHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = self.state.rotate_left(8) ^ b as u64;
        }
        self.state = self.state.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_u64(&mut self, value: u64) {
        self.state = value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type PostingsMap = HashMap<u64, RawPostings, BuildHasherDefault<CodeHasher>>;

/// Incremental in-memory index builder.
pub struct IndexBuilder {
    params: IndexParams,
    codec: ListCodec,
    record_lens: Vec<u32>,
    postings: PostingsMap,
}

impl IndexBuilder {
    /// Start a build with the given parameters and the paper's codec.
    pub fn new(params: IndexParams) -> IndexBuilder {
        IndexBuilder {
            params,
            codec: ListCodec::Paper,
            record_lens: Vec::new(),
            postings: PostingsMap::default(),
        }
    }

    /// Use a different postings codec (experiment E5).
    pub fn with_codec(mut self, codec: ListCodec) -> IndexBuilder {
        self.codec = codec;
        self
    }

    /// Add the next record; returns its id. Records receive consecutive
    /// ids in insertion order.
    pub fn add_record(&mut self, bases: &[Base]) -> u32 {
        let id = self.record_lens.len() as u32;
        self.record_lens.push(bases.len() as u32);
        for (offset, code) in self.params.extract(bases) {
            self.postings.entry(code).or_default().push(id, offset);
        }
        id
    }

    /// Number of records added so far.
    pub fn records_added(&self) -> u32 {
        self.record_lens.len() as u32
    }

    /// Finish: apply stopping, sort, compress.
    pub fn finish(self) -> CompressedIndex {
        let num_records = self.record_lens.len() as u32;
        let df_limit = match &self.params.stopping {
            Some(policy) => {
                policy.df_limit(num_records, self.postings.values().map(|p| p.df() as u32))
            }
            None => u32::MAX,
        };
        let mut lists: Vec<(u64, RawPostings)> = self
            .postings
            .into_iter()
            .filter(|(_, raw)| raw.df() as u32 <= df_limit)
            .collect();
        lists.sort_unstable_by_key(|&(code, _)| code);
        CompressedIndex::from_sorted_lists(
            self.params,
            self.codec,
            self.record_lens,
            lists.into_iter().map(|(code, raw)| (code, raw.into_list())),
        )
    }
}

// ---------------------------------------------------------------------------
// Run files: the external build's spill format.
// ---------------------------------------------------------------------------

fn write_vu64(out: &mut impl Write, mut value: u64) -> std::io::Result<()> {
    while value >= 0x80 {
        out.write_all(&[(value as u8 & 0x7f) | 0x80])?;
        value >>= 7;
    }
    out.write_all(&[value as u8])
}

fn read_vu64(input: &mut impl Read) -> Result<Option<u64>, IndexError> {
    let mut value = 0u64;
    let mut byte = [0u8; 1];
    for group in 0..10u32 {
        match input.read(&mut byte)? {
            0 if group == 0 => return Ok(None), // clean EOF at a boundary
            0 => {
                return Err(IndexError::bad_in(
                    "run file truncated mid-value",
                    "run-file",
                ))
            }
            _ => {}
        }
        value |= ((byte[0] & 0x7f) as u64) << (7 * group);
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
    }
    Err(IndexError::bad_in("run file varint too long", "run-file"))
}

/// Spill one chunk's postings to a sorted run file.
///
/// Format, per distinct code in ascending order:
/// `code_gap+1 | n_pairs | (record_gap, offset_or_gap)*` — record gaps are
/// from the previous pair (0 means same record, whose offsets are then
/// gap-coded; a new record's first offset is absolute).
fn spill_run(path: &Path, postings: PostingsMap) -> Result<(), IndexError> {
    let mut lists: Vec<(u64, RawPostings)> = postings.into_iter().collect();
    lists.sort_unstable_by_key(|&(code, _)| code);

    let mut out = BufWriter::new(File::create(path)?);
    let mut prev_code = 0u64;
    for (code, raw) in lists {
        write_vu64(&mut out, code - prev_code + 1)?;
        prev_code = code;
        write_vu64(&mut out, raw.len() as u64)?;
        let mut prev_record = 0u32;
        let mut prev_offset = 0u32;
        for &(record, offset) in raw.pairs() {
            let record_gap = record - prev_record;
            write_vu64(&mut out, record_gap as u64)?;
            // A record's first offset is stored absolutely; later offsets
            // of the same record as gaps from the previous one.
            let stored = if record_gap == 0 {
                offset - prev_offset
            } else {
                offset
            };
            write_vu64(&mut out, stored as u64)?;
            prev_offset = offset;
            prev_record = record;
        }
        // Group terminator is implicit via n_pairs.
    }
    out.flush()?;
    Ok(())
}

/// One decoded run-file group: an interval code and its sorted
/// `(record, offset)` pairs.
type RunGroup = (u64, Vec<(u32, u32)>);

/// Streaming reader over one run file: yields [`RunGroup`]s in ascending
/// code order.
struct RunReader {
    input: BufReader<File>,
    /// The group already decoded and waiting to be consumed.
    pending: Option<RunGroup>,
    prev_code: u64,
}

impl RunReader {
    fn open(path: &Path) -> Result<RunReader, IndexError> {
        let mut reader = RunReader {
            input: BufReader::new(File::open(path)?),
            pending: None,
            prev_code: 0,
        };
        reader.advance()?;
        Ok(reader)
    }

    /// Decode the next group into `pending` (None at EOF).
    fn advance(&mut self) -> Result<(), IndexError> {
        let Some(code_gap) = read_vu64(&mut self.input)? else {
            self.pending = None;
            return Ok(());
        };
        if code_gap == 0 {
            return Err(IndexError::bad_in("zero code gap in run file", "run-file"));
        }
        let code = self.prev_code + code_gap - 1;
        self.prev_code = code;
        let n = read_vu64(&mut self.input)?.ok_or(IndexError::bad_in(
            "run file truncated at pair count",
            "run-file",
        ))? as usize;
        let mut pairs = Vec::with_capacity(n);
        let mut prev_record = 0u32;
        let mut prev_offset = 0u32;
        let mut first_of_record = true;
        for _ in 0..n {
            let record_gap = read_vu64(&mut self.input)?.ok_or(IndexError::bad_in(
                "run file truncated at record gap",
                "run-file",
            ))? as u32;
            let stored = read_vu64(&mut self.input)?.ok_or(IndexError::bad_in(
                "run file truncated at offset",
                "run-file",
            ))? as u32;
            let record = prev_record + record_gap;
            if record_gap > 0 {
                first_of_record = true;
            }
            let offset = if first_of_record || prev_offset == 0 {
                stored
            } else {
                prev_offset + stored
            };
            pairs.push((record, offset));
            prev_record = record;
            prev_offset = offset;
            first_of_record = false;
        }
        self.pending = Some((code, pairs));
        Ok(())
    }

    fn peek_code(&self) -> Option<u64> {
        self.pending.as_ref().map(|&(code, _)| code)
    }

    fn take(&mut self) -> Result<Option<RunGroup>, IndexError> {
        let group = self.pending.take();
        if group.is_some() {
            self.advance()?;
        }
        Ok(group)
    }
}

/// External (bounded-memory) index build.
///
/// Records are consumed from `records` in id order; every `chunk_records`
/// records the accumulated postings are spilled to a run file under
/// `spill_dir`, and at the end the runs are merged into the final
/// compressed index. Run files are deleted afterwards.
pub fn build_chunked<I, B>(
    params: IndexParams,
    codec: ListCodec,
    records: I,
    chunk_records: usize,
    spill_dir: &Path,
) -> Result<CompressedIndex, IndexError>
where
    I: IntoIterator<Item = B>,
    B: AsRef<[Base]>,
{
    assert!(chunk_records >= 1, "chunk size must be positive");
    std::fs::create_dir_all(spill_dir)?;

    let mut record_lens: Vec<u32> = Vec::new();
    let mut chunk = PostingsMap::default();
    let mut run_paths: Vec<PathBuf> = Vec::new();
    let mut in_chunk = 0usize;

    let spill = |chunk: PostingsMap, runs: &mut Vec<PathBuf>| -> Result<(), IndexError> {
        let path = spill_dir.join(format!("run{:05}.nucrun", runs.len()));
        spill_run(&path, chunk)?;
        runs.push(path);
        Ok(())
    };

    for record in records {
        let bases = record.as_ref();
        let id = record_lens.len() as u32;
        record_lens.push(bases.len() as u32);
        for (offset, code) in params.extract(bases) {
            chunk.entry(code).or_default().push(id, offset);
        }
        in_chunk += 1;
        if in_chunk >= chunk_records {
            spill(std::mem::take(&mut chunk), &mut run_paths)?;
            in_chunk = 0;
        }
    }
    if !chunk.is_empty() || run_paths.is_empty() {
        spill(chunk, &mut run_paths)?;
    }

    let index = merge_runs(params, codec, record_lens, &run_paths)?;
    for path in &run_paths {
        let _ = std::fs::remove_file(path);
    }
    Ok(index)
}

/// Merge sorted run files into a compressed index. Runs are in record-id
/// order, so equal-code groups concatenate run-by-run.
fn merge_runs(
    params: IndexParams,
    codec: ListCodec,
    record_lens: Vec<u32>,
    run_paths: &[PathBuf],
) -> Result<CompressedIndex, IndexError> {
    let mut readers: Vec<RunReader> = run_paths
        .iter()
        .map(|p| RunReader::open(p))
        .collect::<Result<_, _>>()?;

    let num_records = record_lens.len() as u32;

    // First pass cannot know dfs without reading everything, so the
    // merge materialises lists one code at a time and filters by the
    // stopping limit afterwards. For TopK stopping the dfs of *all* codes
    // are needed first; collect them cheaply in that case.
    let df_limit = match &params.stopping {
        Some(crate::stopping::StopPolicy::TopK(_)) => {
            let mut dfs: HashMap<u64, u32, BuildHasherDefault<CodeHasher>> = HashMap::default();
            for path in run_paths {
                let mut r = RunReader::open(path)?;
                while let Some((code, pairs)) = r.take()? {
                    let mut df = 0u32;
                    let mut prev = None;
                    for &(record, _) in &pairs {
                        if prev != Some(record) {
                            df += 1;
                            prev = Some(record);
                        }
                    }
                    *dfs.entry(code).or_insert(0) += df;
                }
            }
            params
                .stopping
                .as_ref()
                .unwrap()
                .df_limit(num_records, dfs.values().copied())
        }
        Some(policy) => policy.df_limit(num_records, std::iter::empty()),
        None => u32::MAX,
    };

    let mut lists: Vec<(u64, PostingsList)> = Vec::new();
    while let Some(code) = readers.iter().filter_map(RunReader::peek_code).min() {
        let mut raw = RawPostings::default();
        for reader in &mut readers {
            if reader.peek_code() == Some(code) {
                let (_, pairs) = reader.take()?.expect("peeked group exists");
                for (record, offset) in pairs {
                    raw.push(record, offset);
                }
            }
        }
        let list = raw.into_list();
        if list.df() as u32 <= df_limit {
            lists.push((code, list));
        }
    }

    Ok(CompressedIndex::from_sorted_lists(
        params,
        codec,
        record_lens,
        lists.into_iter(),
    ))
}

/// Parallel in-memory build: records are split into `num_threads`
/// contiguous slices, each built on its own thread, and the per-thread
/// sorted lists merged (slice order is record order, so equal-code lists
/// concatenate).
pub fn build_parallel(
    params: IndexParams,
    codec: ListCodec,
    records: &[Vec<Base>],
    num_threads: usize,
) -> CompressedIndex {
    let num_threads = num_threads.max(1).min(records.len().max(1));
    let slice_len = records.len().div_ceil(num_threads);

    let mut partials: Vec<Vec<(u64, RawPostings)>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, slice) in records.chunks(slice_len.max(1)).enumerate() {
            let params = &params;
            handles.push(scope.spawn(move |_| {
                let base_id = (t * slice_len) as u32;
                let mut map = PostingsMap::default();
                for (i, record) in slice.iter().enumerate() {
                    let id = base_id + i as u32;
                    for (offset, code) in params.extract(record) {
                        map.entry(code).or_default().push(id, offset);
                    }
                }
                let mut lists: Vec<(u64, RawPostings)> = map.into_iter().collect();
                lists.sort_unstable_by_key(|&(code, _)| code);
                lists
            }));
        }
        for handle in handles {
            partials.push(handle.join().expect("index build thread panicked"));
        }
    })
    .expect("crossbeam scope failed");

    let record_lens: Vec<u32> = records.iter().map(|r| r.len() as u32).collect();
    let num_records = record_lens.len() as u32;

    // Merge the per-thread sorted list vectors.
    let mut cursors = vec![0usize; partials.len()];
    let mut merged: Vec<(u64, PostingsList)> = Vec::new();
    loop {
        let mut next_code: Option<u64> = None;
        for (t, part) in partials.iter().enumerate() {
            if let Some(&(code, _)) = part.get(cursors[t]) {
                next_code = Some(next_code.map_or(code, |c: u64| c.min(code)));
            }
        }
        let Some(code) = next_code else { break };
        let mut raw = RawPostings::default();
        for (t, part) in partials.iter().enumerate() {
            if let Some((c, partial)) = part.get(cursors[t]) {
                if *c == code {
                    for &(record, offset) in partial.pairs() {
                        raw.push(record, offset);
                    }
                    cursors[t] += 1;
                }
            }
        }
        merged.push((code, raw.into_list()));
    }

    // Apply stopping exactly as the in-memory builder does.
    let df_limit = match &params.stopping {
        Some(policy) => policy.df_limit(num_records, merged.iter().map(|(_, l)| l.df() as u32)),
        None => u32::MAX,
    };
    merged.retain(|(_, list)| list.df() as u32 <= df_limit);

    CompressedIndex::from_sorted_lists(params, codec, record_lens, merged.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stopping::StopPolicy;
    use nucdb_seq::random::{random_seq, CollectionSpec, SyntheticCollection};
    use nucdb_seq::{pack_kmer, DnaSeq};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn tiny_records() -> Vec<Vec<Base>> {
        vec![
            bases(b"ACGTACGT"),
            bases(b"TTTTACGT"),
            bases(b"GGGGGGGG"),
            bases(b"ACGTTTTT"),
        ]
    }

    #[test]
    fn in_memory_build_and_lookup() {
        let mut builder = IndexBuilder::new(IndexParams::new(4));
        for r in tiny_records() {
            builder.add_record(&r);
        }
        assert_eq!(builder.records_added(), 4);
        let index = builder.finish();
        assert_eq!(index.num_records(), 4);

        let acgt = pack_kmer(&bases(b"ACGT"));
        let list = index.postings(acgt).unwrap().unwrap();
        // ACGT occurs in records 0 (offsets 0 and 4), 1 (offset 4), 3 (offset 0).
        assert_eq!(list.df(), 3);
        assert_eq!(list.entries[0].record, 0);
        assert_eq!(list.entries[0].offsets, vec![0, 4]);
        assert_eq!(list.entries[1].record, 1);
        assert_eq!(list.entries[1].offsets, vec![4]);
        assert_eq!(list.entries[2].record, 3);
        assert_eq!(list.entries[2].offsets, vec![0]);

        let gggg = pack_kmer(&bases(b"GGGG"));
        let list = index.postings(gggg).unwrap().unwrap();
        assert_eq!(list.df(), 1);
        assert_eq!(list.entries[0].offsets, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_extracted_interval_is_findable() {
        // Lookup completeness: every interval of every record appears in
        // the index at its position.
        let mut rng = StdRng::seed_from_u64(3);
        let records: Vec<Vec<Base>> = (0..20)
            .map(|_| {
                DnaSeq::from_codes(random_seq(&mut rng, 200, 0.5, 0.0).codes().to_vec())
                    .representative_bases()
            })
            .collect();
        let params = IndexParams::new(8);
        let mut builder = IndexBuilder::new(params.clone());
        for r in &records {
            builder.add_record(r);
        }
        let index = builder.finish();
        for (id, record) in records.iter().enumerate() {
            for (offset, code) in params.extract(record) {
                let list = index
                    .postings(code)
                    .unwrap()
                    .unwrap_or_else(|| panic!("interval {code} of record {id} missing from index"));
                let entry = list
                    .entries
                    .iter()
                    .find(|p| p.record == id as u32)
                    .unwrap_or_else(|| panic!("record {id} missing from list {code}"));
                assert!(
                    entry.offsets.contains(&offset),
                    "offset {offset} missing for record {id}, interval {code}"
                );
            }
        }
    }

    #[test]
    fn stopping_drops_frequent_intervals() {
        // AAAA occurs in every record; with DfFraction(0.5) it must go.
        let records: Vec<Vec<Base>> = (0..4)
            .map(|i| {
                let mut r = bases(b"AAAAAA");
                r.extend_from_slice(&bases(match i {
                    0 => &b"CGCGT"[..],
                    1 => b"GTGTA",
                    2 => b"TCTCG",
                    _ => b"GACAC",
                }));
                r
            })
            .collect();
        let params = IndexParams::new(4).with_stopping(StopPolicy::DfFraction(0.5));
        let mut builder = IndexBuilder::new(params);
        for r in &records {
            builder.add_record(r);
        }
        let index = builder.finish();
        let aaaa = pack_kmer(&bases(b"AAAA"));
        assert!(
            index.postings(aaaa).unwrap().is_none(),
            "AAAA should be stopped"
        );
        // Rare intervals survive.
        let cgcg = pack_kmer(&bases(b"CGCG"));
        assert!(index.postings(cgcg).unwrap().is_some());
    }

    #[test]
    fn chunked_build_equals_in_memory() {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(21));
        let records: Vec<Vec<Base>> = coll
            .records
            .iter()
            .map(|r| r.seq.representative_bases())
            .collect();

        let params = IndexParams::new(6);
        let mut builder = IndexBuilder::new(params.clone());
        for r in &records {
            builder.add_record(r);
        }
        let reference = builder.finish();

        let dir = std::env::temp_dir().join(format!("nucdb_chunk_test_{}", std::process::id()));
        let chunked = build_chunked(
            params,
            ListCodec::Paper,
            records.iter().map(|r| r.as_slice()),
            7,
            &dir,
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(chunked.num_records(), reference.num_records());
        assert_eq!(chunked.distinct_intervals(), reference.distinct_intervals());
        assert_eq!(
            chunked.decode_all().unwrap(),
            reference.decode_all().unwrap()
        );
        // Identical lists must compress to identical blobs.
        assert_eq!(chunked.blob(), reference.blob());
    }

    #[test]
    fn chunked_build_with_stopping_matches() {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(22));
        let records: Vec<Vec<Base>> = coll
            .records
            .iter()
            .map(|r| r.seq.representative_bases())
            .collect();
        let params = IndexParams::new(4).with_stopping(StopPolicy::DfAbsolute(5));

        let mut builder = IndexBuilder::new(params.clone());
        for r in &records {
            builder.add_record(r);
        }
        let reference = builder.finish();

        let dir = std::env::temp_dir().join(format!("nucdb_chunk_stop_{}", std::process::id()));
        let chunked = build_chunked(
            params,
            ListCodec::Paper,
            records.iter().map(|r| r.as_slice()),
            5,
            &dir,
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            chunked.decode_all().unwrap(),
            reference.decode_all().unwrap()
        );
    }

    #[test]
    fn parallel_build_equals_in_memory() {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(23));
        let records: Vec<Vec<Base>> = coll
            .records
            .iter()
            .map(|r| r.seq.representative_bases())
            .collect();
        let params = IndexParams::new(6);

        let mut builder = IndexBuilder::new(params.clone());
        for r in &records {
            builder.add_record(r);
        }
        let reference = builder.finish();

        for threads in [1, 2, 4, 7] {
            let parallel = build_parallel(params.clone(), ListCodec::Paper, &records, threads);
            assert_eq!(
                parallel.decode_all().unwrap(),
                reference.decode_all().unwrap(),
                "threads = {threads}"
            );
            assert_eq!(parallel.blob(), reference.blob(), "threads = {threads}");
        }
    }

    #[test]
    fn empty_collection_builds_empty_index() {
        let builder = IndexBuilder::new(IndexParams::new(8));
        let index = builder.finish();
        assert_eq!(index.num_records(), 0);
        assert_eq!(index.distinct_intervals(), 0);
        assert!(index.postings(0).unwrap().is_none());
    }

    #[test]
    fn chunked_build_of_empty_collection() {
        let dir = std::env::temp_dir().join(format!("nucdb_chunk_empty_{}", std::process::id()));
        let index = build_chunked(
            IndexParams::new(8),
            ListCodec::Paper,
            std::iter::empty::<Vec<Base>>(),
            4,
            &dir,
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(index.num_records(), 0);
        assert_eq!(index.distinct_intervals(), 0);
    }

    #[test]
    fn run_file_round_trip() {
        // Exercise the spill format directly with awkward values:
        // offset 0 first occurrences, repeated records, code gaps of 1.
        let mut map = PostingsMap::default();
        for (code, rec, off) in [
            (5u64, 0u32, 0u32),
            (5, 0, 1),
            (5, 2, 0),
            (6, 1, 7),
            (100, 0, 0),
            (100, 0, 3),
            (100, 0, 4),
            (100, 3, 9),
        ] {
            map.entry(code).or_default().push(rec, off);
        }
        let path = std::env::temp_dir().join(format!("nucdb_run_rt_{}.run", std::process::id()));
        spill_run(&path, map).unwrap();
        let mut reader = RunReader::open(&path).unwrap();
        let mut groups = Vec::new();
        while let Some(g) = reader.take().unwrap() {
            groups.push(g);
        }
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            groups,
            vec![
                (5u64, vec![(0u32, 0u32), (0, 1), (2, 0)]),
                (6, vec![(1, 7)]),
                (100, vec![(0, 0), (0, 3), (0, 4), (3, 9)]),
            ]
        );
    }
}
