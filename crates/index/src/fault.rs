//! Deterministic I/O fault injection for durability testing.
//!
//! Real storage fails in a handful of characteristic ways: reads return
//! fewer bytes than asked (short reads), the kernel interrupts a call
//! (transient `io::Error`s), media silently flips bits, and crashes
//! truncate files mid-write. [`FaultyFile`] reproduces all four on the
//! positional-read path used by [`OnDiskIndex`](crate::OnDiskIndex) and
//! the on-disk store, and [`FaultyReader`] does the same for streaming
//! loads — both driven by a [`FaultPlan`] seeded through the in-repo
//! `rand` stand-in, so a failing run replays exactly from its seed.
//!
//! The probabilistic decisions are derived from `(seed, call counter)`,
//! which makes a single-threaded test fully deterministic: the same
//! plan against the same access sequence injects the same faults.

use std::io::{self, Read};
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A recipe for the faults to inject, applied on top of pristine bytes.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for the per-call pseudo-random decisions.
    pub seed: u64,
    /// Probability that a read returns fewer bytes than requested.
    pub short_read_prob: f64,
    /// Probability that a read fails with a transient
    /// (`ErrorKind::Interrupted`) error instead of returning data.
    pub transient_error_prob: f64,
    /// Upper bound on the *total* number of transient errors injected
    /// over the life of the file, so a bounded-retry reader is
    /// guaranteed to eventually make progress.
    pub transient_budget: u32,
    /// Byte positions to corrupt, as `(offset, xor_mask)` pairs. Must be
    /// sorted by offset. A mask of zero is a no-op.
    pub bit_flips: Vec<(u64, u8)>,
    /// Pretend the file ends at this offset (reads beyond it see EOF).
    pub truncate_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing: the shim behaves like the real file.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            short_read_prob: 0.0,
            transient_error_prob: 0.0,
            transient_budget: 0,
            bit_flips: Vec::new(),
            truncate_at: None,
        }
    }

    /// Enable short reads with probability `p`.
    pub fn with_short_reads(mut self, p: f64) -> FaultPlan {
        self.short_read_prob = p;
        self
    }

    /// Enable transient errors with probability `p`, at most `budget`
    /// injections total.
    pub fn with_transient_errors(mut self, p: f64, budget: u32) -> FaultPlan {
        self.transient_error_prob = p;
        self.transient_budget = budget;
        self
    }

    /// Corrupt the bytes at `flips` (sorted by offset internally).
    pub fn with_bit_flips(mut self, mut flips: Vec<(u64, u8)>) -> FaultPlan {
        flips.sort_unstable_by_key(|&(offset, _)| offset);
        self.bit_flips = flips;
        self
    }

    /// Pretend the file ends at byte `offset`.
    pub fn with_truncation(mut self, offset: u64) -> FaultPlan {
        self.truncate_at = Some(offset);
        self
    }

    /// Apply the plan's bit flips to the slice of `buf` that was read
    /// from file offset `base`.
    fn apply_flips(&self, buf: &mut [u8], base: u64) {
        if self.bit_flips.is_empty() {
            return;
        }
        let end = base + buf.len() as u64;
        let start = self.bit_flips.partition_point(|&(offset, _)| offset < base);
        for &(offset, mask) in &self.bit_flips[start..] {
            if offset >= end {
                break;
            }
            buf[(offset - base) as usize] ^= mask;
        }
    }
}

/// An in-memory stand-in for a file on failing media, usable wherever
/// the pread path accepts a [`PositionalReader`](crate::PositionalReader)
/// (via [`PositionalReader::faulty`](crate::PositionalReader::faulty)).
#[derive(Debug)]
pub struct FaultyFile {
    bytes: Vec<u8>,
    plan: FaultPlan,
    transient_used: AtomicU32,
    calls: AtomicU64,
}

impl FaultyFile {
    /// Wrap pristine `bytes` with `plan`.
    pub fn new(bytes: Vec<u8>, plan: FaultPlan) -> FaultyFile {
        FaultyFile {
            bytes,
            plan,
            transient_used: AtomicU32::new(0),
            calls: AtomicU64::new(0),
        }
    }

    /// Load the pristine bytes from `path`, then serve them through
    /// `plan`'s faults.
    pub fn from_path(path: &Path, plan: FaultPlan) -> io::Result<FaultyFile> {
        Ok(FaultyFile::new(std::fs::read(path)?, plan))
    }

    /// Transient errors injected so far.
    pub fn transient_injected(&self) -> u32 {
        self.transient_used.load(Ordering::Relaxed)
    }

    /// One positional read with faults applied: mirrors the semantics of
    /// `pread(2)` (may return fewer bytes than requested; zero at EOF).
    pub fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut rng =
            StdRng::seed_from_u64(self.plan.seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        if self.plan.transient_error_prob > 0.0
            && rng.random_bool(self.plan.transient_error_prob)
            && self
                .transient_used
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |used| {
                    (used < self.plan.transient_budget).then_some(used + 1)
                })
                .is_ok()
        {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient I/O fault",
            ));
        }

        let end = (self.bytes.len() as u64).min(self.plan.truncate_at.unwrap_or(u64::MAX));
        if offset >= end || buf.is_empty() {
            return Ok(0);
        }
        let available = (end - offset) as usize;
        let mut n = buf.len().min(available);
        if n > 1 && self.plan.short_read_prob > 0.0 && rng.random_bool(self.plan.short_read_prob) {
            n = rng.random_range(1..n);
        }
        let src = &self.bytes[offset as usize..offset as usize + n];
        buf[..n].copy_from_slice(src);
        self.plan.apply_flips(&mut buf[..n], offset);
        Ok(n)
    }
}

/// A streaming [`Read`] wrapper that injects the same fault classes as
/// [`FaultyFile`], for exercising sequential loaders
/// (`load_index_from`, store parsing) against failing sources.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
    pos: u64,
    transient_used: u32,
    calls: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wrap `inner` (assumed to start at byte offset zero) with `plan`.
    pub fn new(inner: R, plan: FaultPlan) -> FaultyReader<R> {
        FaultyReader {
            inner,
            plan,
            pos: 0,
            transient_used: 0,
            calls: 0,
        }
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let call = self.calls;
        self.calls += 1;
        let mut rng =
            StdRng::seed_from_u64(self.plan.seed ^ call.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        if self.plan.transient_error_prob > 0.0
            && self.transient_used < self.plan.transient_budget
            && rng.random_bool(self.plan.transient_error_prob)
        {
            self.transient_used += 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient I/O fault",
            ));
        }

        if let Some(limit) = self.plan.truncate_at {
            if self.pos >= limit {
                return Ok(0);
            }
        }
        let mut want = buf.len();
        if let Some(limit) = self.plan.truncate_at {
            want = want.min((limit - self.pos) as usize);
        }
        if want > 1 && self.plan.short_read_prob > 0.0 && rng.random_bool(self.plan.short_read_prob)
        {
            want = rng.random_range(1..want);
        }
        let n = self.inner.read(&mut buf[..want])?;
        self.plan.apply_flips(&mut buf[..n], self.pos);
        self.pos += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload() -> Vec<u8> {
        (0u32..4096).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn clean_plan_is_transparent() {
        let data = payload();
        let f = FaultyFile::new(data.clone(), FaultPlan::clean(1));
        let mut buf = vec![0u8; data.len()];
        let mut filled = 0;
        while filled < buf.len() {
            let n = f.read_at(&mut buf[filled..], filled as u64).unwrap();
            assert!(n > 0);
            filled += n;
        }
        assert_eq!(buf, data);
        assert_eq!(f.read_at(&mut [0u8; 8], data.len() as u64).unwrap(), 0);
    }

    #[test]
    fn short_reads_are_deterministic_per_seed() {
        let data = payload();
        let run = |seed| {
            let f = FaultyFile::new(data.clone(), FaultPlan::clean(seed).with_short_reads(0.7));
            let mut sizes = Vec::new();
            let mut offset = 0u64;
            while (offset as usize) < data.len() {
                let mut buf = [0u8; 256];
                let n = f.read_at(&mut buf, offset).unwrap();
                assert_eq!(
                    &buf[..n],
                    &data[offset as usize..offset as usize + n],
                    "short read must still return correct bytes"
                );
                sizes.push(n);
                offset += n as u64;
            }
            sizes
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
        assert!(run(99).iter().any(|&n| n < 256), "no short read injected");
    }

    #[test]
    fn transient_budget_is_respected() {
        let data = payload();
        let f = FaultyFile::new(
            data.clone(),
            FaultPlan::clean(5).with_transient_errors(1.0, 3),
        );
        let mut errors = 0;
        for _ in 0..10 {
            let mut buf = [0u8; 16];
            match f.read_at(&mut buf, 0) {
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::Interrupted);
                    errors += 1;
                }
                Ok(n) => assert_eq!(&buf[..n], &data[..n]),
            }
        }
        assert_eq!(errors, 3);
        assert_eq!(f.transient_injected(), 3);
    }

    #[test]
    fn bit_flips_and_truncation_apply() {
        let data = payload();
        let f = FaultyFile::new(
            data.clone(),
            FaultPlan::clean(2)
                .with_bit_flips(vec![(10, 0xFF), (100, 0x01)])
                .with_truncation(200),
        );
        let mut buf = vec![0u8; 300];
        let mut filled = 0usize;
        loop {
            let n = f.read_at(&mut buf[filled..], filled as u64).unwrap();
            if n == 0 {
                break;
            }
            filled += n;
        }
        assert_eq!(filled, 200, "truncation should stop reads at 200");
        assert_eq!(buf[10], data[10] ^ 0xFF);
        assert_eq!(buf[100], data[100] ^ 0x01);
        assert_eq!(buf[11], data[11]);
    }

    #[test]
    fn faulty_reader_read_to_end_survives_short_reads() {
        let data = payload();
        let mut out = Vec::new();
        FaultyReader::new(&data[..], FaultPlan::clean(77).with_short_reads(0.8))
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn faulty_reader_truncation_is_clean_eof() {
        let data = payload();
        let mut out = Vec::new();
        FaultyReader::new(&data[..], FaultPlan::clean(3).with_truncation(123))
            .read_to_end(&mut out)
            .unwrap();
        assert_eq!(out, &data[..123]);
    }
}
