//! The on-disk index format and the on-demand list reader.
//!
//! The paper's setting is explicit: the collection (and its index) live on
//! disk, and *disk costs dominate query evaluation*. The on-disk layout
//! therefore keeps the vocabulary and record-length table small enough to
//! hold in memory, while postings lists are fetched individually — one
//! seek + one contiguous read per query interval. [`OnDiskIndex`] counts
//! the bytes it reads so experiments can report I/O volume alongside wall
//! time (wall time alone understates the win on a machine whose page
//! cache swallows the collection).
//!
//! Version 3 (current, written by [`write_index`]):
//!
//! ```text
//! magic "NUCIDX03"
//! header_len:u32le  header_crc:u32le        — IEEE CRC-32 of the header bytes
//! header bytes:
//!   k:u8  stride:v  stopping:(tag:u8 payload)  codec:u8  granularity:u8
//!   num_records:v  record_lens:v*
//!   vocab_count:v  (code_gap+1:v  len:v  df:v  list_crc:v)*
//!   blob_len:v                              — list offsets are cumulative
//! blob bytes                                — each list covered by its list_crc
//! ```
//!
//! Version 4 (magic `NUCIDX04`), written by [`write_index`] when the
//! codec is [`ListCodec::Block`], is v3 with two changes: each vocab
//! entry's `list_crc` covers only the list's *skip-table prefix* (the
//! block payloads carry their own CRC-32s inside the skip entries, so a
//! point corruption is detected — and costs — one block, not the list),
//! and each entry gains a `max_count:v` field, the list's largest
//! per-record occurrence count, which powers hopeless-block skipping in
//! coarse search. Non-block indexes keep writing byte-identical v3
//! files.
//!
//! Version 2 (legacy, still loadable; [`write_index_v2`] kept for
//! compatibility tests) is the same minus the length/CRC prefix and the
//! per-list `list_crc` field, with magic `NUCIDX02`. (`v` = LEB128-style
//! varint.)
//!
//! Every byte of a v3/v4 file is covered by a checksum: the magic and
//! prefix by the header CRC's span, the header by `header_crc`, and the
//! blob (whose cumulative list extents cover it exactly) by the per-list
//! CRCs — in v4 the skip tables by the vocab CRCs and every block
//! payload by its skip-entry CRC — so any single corrupted byte is
//! detected at load, and on the pread path the moment the affected list
//! (v4: block) is fetched and decoded. Files are written through
//! [`AtomicFile`], so a crashed build never leaves a torn index.

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

use nucdb_obs::{Counter, MetricsRegistry};

use crate::compress::{
    decode_counts_with, decode_postings, decode_postings_with, CompressedIndex, FetchStats,
    ListCodec, PostingsVisitor, VocabEntry,
};
use crate::durable::{crc32, read_exact_chunked, AtomicFile, CountingReader};
use crate::error::IndexError;
use crate::fault::{FaultPlan, FaultyFile};
use crate::interval::IndexParams;
use crate::postings::PostingsList;
use crate::pread::PositionalReader;
use crate::stopping::StopPolicy;

const MAGIC_V4: &[u8; 8] = b"NUCIDX04";
const MAGIC_V3: &[u8; 8] = b"NUCIDX03";
const MAGIC_V2: &[u8; 8] = b"NUCIDX02";
/// Bytes before the header in a v3/v4 file: magic + header_len + header_crc.
const V3_PREFIX_LEN: u64 = 16;

/// How a file's header checksums its lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeaderStyle {
    /// v2: no per-list checksums.
    Plain,
    /// v3: per-list CRC over the whole list.
    ListCrcs,
    /// v4 (block codec): per-list CRC over the skip-table prefix only
    /// (block payloads self-checksum), plus a per-list max-count field.
    BlockCrcs,
}

fn write_vu64(out: &mut impl Write, mut value: u64) -> std::io::Result<()> {
    while value >= 0x80 {
        out.write_all(&[(value as u8 & 0x7f) | 0x80])?;
        value >>= 7;
    }
    out.write_all(&[value as u8])
}

/// Read one varint, reporting truncation/overlength against `section` at
/// the absolute file offset `base + input.pos()`.
fn read_vu64<R: Read>(
    input: &mut CountingReader<R>,
    base: u64,
    section: &'static str,
) -> Result<u64, IndexError> {
    let mut value = 0u64;
    let mut byte = [0u8; 1];
    for group in 0..10u32 {
        if input.read(&mut byte)? == 0 {
            return Err(IndexError::bad_at(
                "index file truncated mid-varint",
                section,
                base + input.pos(),
            ));
        }
        value |= ((byte[0] & 0x7f) as u64) << (7 * group);
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(IndexError::bad_at(
        "index file varint too long",
        section,
        base + input.pos(),
    ))
}

fn write_stopping(out: &mut impl Write, stopping: &Option<StopPolicy>) -> std::io::Result<()> {
    match stopping {
        None => out.write_all(&[0]),
        Some(StopPolicy::DfFraction(f)) => {
            out.write_all(&[1])?;
            write_vu64(out, f.to_bits())
        }
        Some(StopPolicy::DfAbsolute(n)) => {
            out.write_all(&[2])?;
            write_vu64(out, *n as u64)
        }
        Some(StopPolicy::TopK(n)) => {
            out.write_all(&[3])?;
            write_vu64(out, *n as u64)
        }
    }
}

fn read_stopping<R: Read>(
    input: &mut CountingReader<R>,
    base: u64,
) -> Result<Option<StopPolicy>, IndexError> {
    let mut tag = [0u8; 1];
    input.read_exact(&mut tag)?;
    Ok(match tag[0] {
        0 => None,
        1 => Some(StopPolicy::DfFraction(f64::from_bits(read_vu64(
            input, base, "params",
        )?))),
        2 => {
            let n = read_vu64(input, base, "params")?;
            Some(StopPolicy::DfAbsolute(u32::try_from(n).map_err(|_| {
                IndexError::bad_at("df limit overflow", "params", base + input.pos())
            })?))
        }
        3 => Some(StopPolicy::TopK(read_vu64(input, base, "params")? as usize)),
        _ => {
            return Err(IndexError::bad_at(
                "unknown stopping tag",
                "params",
                base + input.pos(),
            ))
        }
    })
}

/// Serialize the header fields shared by v2/v3/v4. With
/// [`HeaderStyle::ListCrcs`] each vocabulary entry carries the CRC-32 of
/// its list bytes; with [`HeaderStyle::BlockCrcs`] the CRC covers only
/// the skip-table prefix and `max_counts` (parallel to the vocabulary)
/// must be provided.
fn encode_header_fields(
    out: &mut Vec<u8>,
    index: &CompressedIndex,
    style: HeaderStyle,
    max_counts: Option<&[u32]>,
) -> Result<(), IndexError> {
    let params = index.params();
    out.push(params.k as u8);
    write_vu64(out, params.stride as u64)?;
    write_stopping(out, &params.stopping)?;
    out.push(index.codec().tag());
    out.push(params.granularity.tag());

    write_vu64(out, index.num_records() as u64)?;
    for &len in index.record_lens() {
        write_vu64(out, len as u64)?;
    }

    write_vu64(out, index.vocab().len() as u64)?;
    let blob = index.blob();
    let mut prev_code = 0u64;
    for (idx, entry) in index.vocab().iter().enumerate() {
        write_vu64(out, entry.code - prev_code + 1)?;
        prev_code = entry.code;
        write_vu64(out, entry.len as u64)?;
        write_vu64(out, entry.df as u64)?;
        let list = &blob[entry.offset as usize..][..entry.len as usize];
        match style {
            HeaderStyle::Plain => {}
            HeaderStyle::ListCrcs => write_vu64(out, crc32(list) as u64)?,
            HeaderStyle::BlockCrcs => {
                let skip_len = crate::block::skip_table_len(entry.df).min(list.len());
                write_vu64(out, crc32(&list[..skip_len]) as u64)?;
                let max_counts = max_counts.expect("v4 headers carry max counts");
                write_vu64(out, max_counts[idx] as u64)?;
            }
        }
    }

    write_vu64(out, blob.len() as u64)?;
    Ok(())
}

/// Serialize a [`CompressedIndex`] to `path` in the current format,
/// atomically: the file is staged in a temp file, `fsync`ed, and renamed
/// into place, so a crash mid-write never leaves a torn index.
///
/// Block-codec indexes are written as `NUCIDX04` (per-block CRCs, stored
/// max counts); every other codec keeps writing byte-identical `NUCIDX03`
/// files.
pub fn write_index(index: &CompressedIndex, path: &Path) -> Result<(), IndexError> {
    let (magic, style) = if index.codec() == ListCodec::Block {
        (MAGIC_V4, HeaderStyle::BlockCrcs)
    } else {
        (MAGIC_V3, HeaderStyle::ListCrcs)
    };
    let max_counts = (style == HeaderStyle::BlockCrcs)
        .then(|| index.max_counts_or_compute())
        .transpose()?;
    let mut header = Vec::new();
    encode_header_fields(&mut header, index, style, max_counts.as_deref())?;
    let header_len = u32::try_from(header.len())
        .map_err(|_| IndexError::Unsupported("index header exceeds 4 GiB"))?;

    let mut out = AtomicFile::create(path)?;
    out.write_all(magic)?;
    out.write_all(&header_len.to_le_bytes())?;
    out.write_all(&crc32(&header).to_le_bytes())?;
    out.write_all(&header)?;
    out.write_all(index.blob())?;
    out.commit()?;
    Ok(())
}

/// Serialize a [`CompressedIndex`] to `path` in the legacy v2 format
/// (no checksums). Kept so compatibility tests can produce the files the
/// previous release wrote; new code should use [`write_index`].
pub fn write_index_v2(index: &CompressedIndex, path: &Path) -> Result<(), IndexError> {
    let mut header = Vec::new();
    encode_header_fields(&mut header, index, HeaderStyle::Plain, None)?;
    let mut out = AtomicFile::create(path)?;
    out.write_all(MAGIC_V2)?;
    out.write_all(&header)?;
    out.write_all(index.blob())?;
    out.commit()?;
    Ok(())
}

/// Shared header contents (everything except the blob).
struct Header {
    params: IndexParams,
    codec: ListCodec,
    record_lens: Vec<u32>,
    vocab: Vec<VocabEntry>,
    /// Per-list CRC-32s, parallel to `vocab`. `None` for legacy v2 files,
    /// which carry no checksums — those load without verification. In v4
    /// files each CRC covers only the list's skip-table prefix.
    list_crcs: Option<Vec<u32>>,
    /// Per-list max per-record occurrence counts (v4 only).
    max_counts: Option<Vec<u32>>,
    /// v4: list CRCs cover skip tables, block payloads self-checksum.
    per_block_crcs: bool,
    blob_len: u64,
    /// Byte position of the blob within the file.
    blob_start: u64,
}

/// Parse the fields shared by v2 and v3. `base` is the absolute file
/// offset of `input`'s first byte, used to locate violations. The
/// returned header's `blob_start` is a placeholder the caller fills in.
fn read_header_fields<R: Read>(
    input: &mut CountingReader<R>,
    base: u64,
    style: HeaderStyle,
) -> Result<Header, IndexError> {
    let mut small = [0u8; 1];
    input.read_exact(&mut small)?;
    let k = small[0] as usize;
    if !(1..=32).contains(&k) {
        return Err(IndexError::bad_at(
            "interval length out of range",
            "params",
            base + input.pos(),
        ));
    }
    let stride = read_vu64(input, base, "params")? as usize;
    if stride == 0 {
        return Err(IndexError::bad_at(
            "zero stride",
            "params",
            base + input.pos(),
        ));
    }
    let stopping = read_stopping(input, base)?;
    input.read_exact(&mut small)?;
    let codec = ListCodec::from_tag(small[0])?;
    input.read_exact(&mut small)?;
    let granularity = crate::interval::Granularity::from_tag(small[0])?;

    let num_records = read_vu64(input, base, "record-lens")?;
    if num_records > u32::MAX as u64 {
        return Err(IndexError::bad_at(
            "record count overflow",
            "record-lens",
            base + input.pos(),
        ));
    }
    // Cap the up-front allocation: `num_records` is untrusted on the v2
    // path (no checksum), and a corrupt count must fail with a clean
    // parse error rather than an OOM abort.
    let mut record_lens = Vec::with_capacity((num_records as usize).min(1 << 20));
    for _ in 0..num_records {
        record_lens.push(
            u32::try_from(read_vu64(input, base, "record-lens")?).map_err(|_| {
                IndexError::bad_at("record length overflow", "record-lens", base + input.pos())
            })?,
        );
    }

    let vocab_count = read_vu64(input, base, "vocabulary")?;
    let mut vocab = Vec::with_capacity((vocab_count as usize).min(1 << 20));
    let mut list_crcs = (style != HeaderStyle::Plain)
        .then(|| Vec::with_capacity((vocab_count as usize).min(1 << 20)));
    let mut max_counts = (style == HeaderStyle::BlockCrcs)
        .then(|| Vec::with_capacity((vocab_count as usize).min(1 << 20)));
    let mut prev_code = 0u64;
    let mut offset = 0u64;
    for _ in 0..vocab_count {
        let gap = read_vu64(input, base, "vocabulary")?;
        if gap == 0 {
            return Err(IndexError::bad_at(
                "zero code gap",
                "vocabulary",
                base + input.pos(),
            ));
        }
        let code = prev_code + gap - 1;
        prev_code = code;
        let len = u32::try_from(read_vu64(input, base, "vocabulary")?).map_err(|_| {
            IndexError::bad_at("list length overflow", "vocabulary", base + input.pos())
        })?;
        let df = u32::try_from(read_vu64(input, base, "vocabulary")?)
            .map_err(|_| IndexError::bad_at("df overflow", "vocabulary", base + input.pos()))?;
        if let Some(crcs) = &mut list_crcs {
            let crc = u32::try_from(read_vu64(input, base, "vocabulary")?).map_err(|_| {
                IndexError::bad_at("list checksum overflow", "vocabulary", base + input.pos())
            })?;
            crcs.push(crc);
        }
        if let Some(max_counts) = &mut max_counts {
            let max_count = u32::try_from(read_vu64(input, base, "vocabulary")?).map_err(|_| {
                IndexError::bad_at("max count overflow", "vocabulary", base + input.pos())
            })?;
            max_counts.push(max_count);
        }
        vocab.push(VocabEntry {
            code,
            offset,
            len,
            df,
        });
        offset += len as u64;
    }

    let blob_len = read_vu64(input, base, "blob")?;
    if blob_len != offset {
        return Err(IndexError::bad_at(
            "blob length disagrees with vocabulary",
            "blob",
            base + input.pos(),
        ));
    }

    let mut params = IndexParams::new(k)
        .with_stride(stride)
        .with_granularity(granularity);
    params.stopping = stopping;
    Ok(Header {
        params,
        codec,
        record_lens,
        vocab,
        list_crcs,
        max_counts,
        per_block_crcs: style == HeaderStyle::BlockCrcs,
        blob_len,
        blob_start: 0,
    })
}

fn read_header<R: Read>(input: &mut CountingReader<R>) -> Result<Header, IndexError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    let style = match &magic {
        m if m == MAGIC_V2 => {
            let mut header = read_header_fields(input, 0, HeaderStyle::Plain)?;
            header.blob_start = input.pos();
            return Ok(header);
        }
        m if m == MAGIC_V3 => HeaderStyle::ListCrcs,
        m if m == MAGIC_V4 => HeaderStyle::BlockCrcs,
        _ => return Err(IndexError::bad_at("bad magic", "magic", 0)),
    };
    let mut word = [0u8; 4];
    input.read_exact(&mut word)?;
    let header_len = u32::from_le_bytes(word) as usize;
    input.read_exact(&mut word)?;
    let expected = u32::from_le_bytes(word);
    let header_bytes = read_exact_chunked(input, header_len)?;
    let actual = crc32(&header_bytes);
    if actual != expected {
        return Err(IndexError::checksum(
            "header",
            V3_PREFIX_LEN,
            expected,
            actual,
        ));
    }
    // The bytes are authenticated; parse errors past this point
    // would indicate a writer bug, but report them properly anyway.
    let mut fields = CountingReader::new(&header_bytes[..]);
    let mut header = read_header_fields(&mut fields, V3_PREFIX_LEN, style)?;
    if fields.pos() != header_len as u64 {
        return Err(IndexError::bad_at(
            "trailing bytes in header",
            "header",
            V3_PREFIX_LEN + fields.pos(),
        ));
    }
    if style == HeaderStyle::BlockCrcs && header.codec != ListCodec::Block {
        return Err(IndexError::bad_in(
            "v4 file must use the block codec",
            "params",
        ));
    }
    header.blob_start = V3_PREFIX_LEN + header_len as u64;
    Ok(header)
}

/// Verify every list in a fully loaded blob against the header's per-list
/// CRCs (no-op for v2 headers, which carry none). For v4 headers the
/// vocab CRC covers the skip-table prefix and every block payload is
/// checked against its own skip-entry CRC, so whole-file loads still
/// verify every blob byte.
fn verify_blob(header: &Header, blob: &[u8]) -> Result<(), IndexError> {
    if let Some(crcs) = &header.list_crcs {
        for (entry, &expected) in header.vocab.iter().zip(crcs) {
            let list = &blob[entry.offset as usize..][..entry.len as usize];
            if header.per_block_crcs {
                let skip_len = crate::block::skip_table_len(entry.df);
                if list.len() < skip_len {
                    return Err(IndexError::bad_at(
                        "list shorter than its skip table",
                        "list",
                        header.blob_start + entry.offset,
                    ));
                }
                let actual = crc32(&list[..skip_len]);
                if actual != expected {
                    return Err(IndexError::checksum(
                        "list",
                        header.blob_start + entry.offset,
                        expected,
                        actual,
                    ));
                }
                crate::block::verify_block_list(list, entry.df)
                    .map_err(|e| e.with_base_offset(header.blob_start + entry.offset))?;
            } else {
                let actual = crc32(list);
                if actual != expected {
                    return Err(IndexError::checksum(
                        "list",
                        header.blob_start + entry.offset,
                        expected,
                        actual,
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Load a whole index from any byte stream (v3 or legacy v2). On v3
/// every byte is checksum-verified before the index is returned.
pub fn load_index_from(reader: impl Read) -> Result<CompressedIndex, IndexError> {
    let mut input = CountingReader::new(reader);
    let header = read_header(&mut input)?;
    let blob = read_exact_chunked(&mut input, header.blob_len as usize)?;
    verify_blob(&header, &blob)?;
    Ok(CompressedIndex::from_parts(
        header.params,
        header.codec,
        header.record_lens,
        header.vocab,
        header.max_counts,
        blob,
    ))
}

/// Load a whole index file into memory.
pub fn load_index(path: &Path) -> Result<CompressedIndex, IndexError> {
    load_index_from(BufReader::new(File::open(path)?))
}

/// An index whose postings stay on disk: the vocabulary and record-length
/// table are memory-resident, each list is fetched with one positional
/// read (`pread`-style, no shared cursor) when asked for. All methods take
/// `&self` and concurrent fetches from multiple threads proceed without
/// contention; the I/O counters are atomics.
///
/// On v3 files every fetched list is verified against its stored CRC-32;
/// a mismatch surfaces as [`IndexError::Corruption`] naming the file
/// offset, and no decoded (potentially wrong) postings escape.
pub struct OnDiskIndex {
    file: PositionalReader,
    params: IndexParams,
    codec: ListCodec,
    record_lens: Vec<u32>,
    vocab: Vec<VocabEntry>,
    list_crcs: Option<Vec<u32>>,
    max_counts: Option<Vec<u32>>,
    per_block_crcs: bool,
    blob_start: u64,
    bytes_read: Counter,
    lists_read: Counter,
}

impl OnDiskIndex {
    /// Open an index file written by [`write_index`] (or a legacy v2
    /// file, which loads without checksum verification).
    pub fn open(path: &Path) -> Result<OnDiskIndex, IndexError> {
        let mut input = CountingReader::new(BufReader::new(File::open(path)?));
        let header = read_header(&mut input)?;
        let file = PositionalReader::new(input.into_inner().into_inner());
        Ok(OnDiskIndex::from_header(header, file))
    }

    /// Open like [`OnDiskIndex::open`], but serve all postings reads
    /// through a deterministic fault-injection shim. The header is parsed
    /// from the pristine file; only the pread path sees `plan`'s faults.
    /// This is the durability-test entry point.
    pub fn open_faulty(path: &Path, plan: FaultPlan) -> Result<OnDiskIndex, IndexError> {
        let mut input = CountingReader::new(BufReader::new(File::open(path)?));
        let header = read_header(&mut input)?;
        let file = PositionalReader::faulty(FaultyFile::from_path(path, plan)?);
        Ok(OnDiskIndex::from_header(header, file))
    }

    fn from_header(header: Header, file: PositionalReader) -> OnDiskIndex {
        OnDiskIndex {
            file,
            params: header.params,
            codec: header.codec,
            record_lens: header.record_lens,
            vocab: header.vocab,
            list_crcs: header.list_crcs,
            max_counts: header.max_counts,
            per_block_crcs: header.per_block_crcs,
            blob_start: header.blob_start,
            bytes_read: Counter::new(),
            lists_read: Counter::new(),
        }
    }

    /// Index parameters.
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// List codec.
    pub fn codec(&self) -> ListCodec {
        self.codec
    }

    /// Number of records indexed.
    pub fn num_records(&self) -> u32 {
        self.record_lens.len() as u32
    }

    /// Record length table.
    pub fn record_lens(&self) -> &[u32] {
        &self.record_lens
    }

    /// Number of distinct intervals.
    pub fn distinct_intervals(&self) -> usize {
        self.vocab.len()
    }

    /// Document frequency of `code` (0 if absent) — answered from the
    /// in-memory vocabulary, no I/O.
    pub fn df(&self, code: u64) -> u32 {
        self.entry(code).map_or(0, |(_, e)| e.df)
    }

    fn entry(&self, code: u64) -> Option<(usize, &VocabEntry)> {
        self.vocab
            .binary_search_by_key(&code, |e| e.code)
            .ok()
            .map(|idx| (idx, &self.vocab[idx]))
    }

    /// Fetch the raw list bytes for a vocab entry into a caller-provided
    /// buffer (one positional read, no lock, no allocation once the buffer
    /// has grown to the working-set maximum), then verify them against the
    /// stored checksum when the file carries one.
    fn fetch_bytes_into(
        &self,
        idx: usize,
        entry: &VocabEntry,
        buf: &mut Vec<u8>,
    ) -> Result<(), IndexError> {
        buf.clear();
        buf.resize(entry.len as usize, 0);
        self.file
            .read_exact_at(buf, self.blob_start + entry.offset)?;
        if let Some(crcs) = &self.list_crcs {
            let expected = crcs[idx];
            // v4 files checksum only the skip-table prefix here; each
            // block payload is verified against its own skip-entry CRC
            // at decode time, so a corrupt block costs one block.
            let covered = if self.per_block_crcs {
                let skip_len = crate::block::skip_table_len(entry.df);
                if buf.len() < skip_len {
                    return Err(IndexError::bad_at(
                        "list shorter than its skip table",
                        "list",
                        self.blob_start + entry.offset,
                    ));
                }
                &buf[..skip_len]
            } else {
                &buf[..]
            };
            let actual = crc32(covered);
            if actual != expected {
                return Err(IndexError::checksum(
                    "list",
                    self.blob_start + entry.offset,
                    expected,
                    actual,
                ));
            }
        }
        self.bytes_read.add(entry.len as u64);
        self.lists_read.inc();
        Ok(())
    }

    /// Fetch the raw list bytes for a vocab entry (one positional read).
    fn fetch_bytes(&self, idx: usize, entry: &VocabEntry) -> Result<Vec<u8>, IndexError> {
        let mut bytes = Vec::new();
        self.fetch_bytes_into(idx, entry, &mut bytes)?;
        Ok(bytes)
    }

    /// Fetch and decode the list for `code`. Errors on a
    /// record-granularity index; use [`OnDiskIndex::counts`] there.
    pub fn postings(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
        if self.params.granularity == crate::interval::Granularity::Records {
            return Err(IndexError::Unsupported(
                "record-granularity index stores no offsets",
            ));
        }
        let Some((idx, entry)) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = self.fetch_bytes(idx, entry)?;
        decode_postings(
            &bytes,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
        )
        .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))
        .map(Some)
    }

    /// Streaming variant of [`OnDiskIndex::postings`]: fetch into `io_buf`
    /// (reused across calls) and call `visit(record, offset)` per posting
    /// without materialising a list. Returns the list's `df`, `Ok(None)`
    /// if the interval is absent.
    pub fn postings_with<F: FnMut(u32, u32)>(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: F,
    ) -> Result<Option<u32>, IndexError> {
        if self.params.granularity == crate::interval::Granularity::Records {
            return Err(IndexError::Unsupported(
                "record-granularity index stores no offsets",
            ));
        }
        let Some((idx, entry)) = self.entry(code) else {
            return Ok(None);
        };
        self.fetch_bytes_into(idx, entry, io_buf)?;
        decode_postings_with(
            io_buf,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
            visit,
        )
        .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))?;
        Ok(Some(entry.df))
    }

    /// Fetch and decode `(record, count)` pairs for `code` (either
    /// granularity).
    pub fn counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
        let Some((idx, entry)) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = self.fetch_bytes(idx, entry)?;
        crate::compress::decode_counts(
            &bytes,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
            self.params.granularity,
        )
        .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))
        .map(Some)
    }

    /// Streaming variant of [`OnDiskIndex::counts`]: fetch into `io_buf`
    /// and call `visit(record, count)` per entry. Returns the list's `df`,
    /// `Ok(None)` if the interval is absent.
    pub fn counts_with<F: FnMut(u32, u32)>(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: F,
    ) -> Result<Option<u32>, IndexError> {
        let Some((idx, entry)) = self.entry(code) else {
            return Ok(None);
        };
        self.fetch_bytes_into(idx, entry, io_buf)?;
        decode_counts_with(
            io_buf,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
            self.params.granularity,
            visit,
        )
        .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))?;
        Ok(Some(entry.df))
    }

    /// The largest per-record occurrence count in `code`'s list — v4
    /// files store this per list; `None` on older formats, `Some(0)` for
    /// absent codes.
    pub fn list_max_count(&self, code: u64) -> Option<u32> {
        let max_counts = self.max_counts.as_ref()?;
        match self.vocab.binary_search_by_key(&code, |e| e.code) {
            Ok(idx) => Some(max_counts[idx]),
            Err(_) => Some(0),
        }
    }

    /// Streaming postings fetch driving a [`PostingsVisitor`], reporting
    /// per-list work counters; on a block (v4) index the visitor's
    /// `skip_block` may refuse hopeless blocks before they are verified
    /// or unpacked. `Ok(None)` if the interval is absent.
    pub fn postings_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        if self.params.granularity == crate::interval::Granularity::Records {
            return Err(IndexError::Unsupported(
                "record-granularity index stores no offsets",
            ));
        }
        let Some((idx, entry)) = self.entry(code) else {
            return Ok(None);
        };
        self.fetch_bytes_into(idx, entry, io_buf)?;
        let mut stats = FetchStats::plain(entry.df);
        stats.bytes_read = entry.len as u64;
        if self.codec == ListCodec::Block {
            let block = crate::block::decode_block_stream(
                io_buf,
                entry.df,
                self.num_records(),
                &self.record_lens,
                crate::interval::Granularity::Offsets,
                true,
                visitor,
            )
            .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))?;
            stats.ids_decoded = block.ids_decoded;
            stats.blocks_decoded = block.blocks_decoded;
            stats.blocks_skipped = block.blocks_skipped;
        } else {
            decode_postings_with(
                io_buf,
                entry.df,
                self.num_records(),
                &self.record_lens,
                self.codec,
                |record, offset| visitor.visit(record, offset),
            )?;
        }
        Ok(Some(stats))
    }

    /// Streaming counts fetch: the counts-path twin of
    /// [`OnDiskIndex::postings_stream`], working at either granularity.
    pub fn counts_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        let Some((idx, entry)) = self.entry(code) else {
            return Ok(None);
        };
        self.fetch_bytes_into(idx, entry, io_buf)?;
        let mut stats = FetchStats::plain(entry.df);
        stats.bytes_read = entry.len as u64;
        if self.codec == ListCodec::Block {
            let block = crate::block::decode_block_stream(
                io_buf,
                entry.df,
                self.num_records(),
                &self.record_lens,
                self.params.granularity,
                false,
                visitor,
            )
            .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))?;
            stats.ids_decoded = block.ids_decoded;
            stats.blocks_decoded = block.blocks_decoded;
            stats.blocks_skipped = block.blocks_skipped;
        } else {
            decode_counts_with(
                io_buf,
                entry.df,
                self.num_records(),
                &self.record_lens,
                self.codec,
                self.params.granularity,
                |record, count| visitor.visit(record, count),
            )?;
        }
        Ok(Some(stats))
    }

    /// Postings bytes fetched since the last reset.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Lists fetched since the last reset.
    pub fn lists_read(&self) -> u64 {
        self.lists_read.get()
    }

    /// Reset the I/O counters (between experiment runs).
    pub fn reset_io_counters(&self) {
        self.bytes_read.reset();
        self.lists_read.reset();
    }

    /// Re-home the I/O counters in `registry` so they appear in metric
    /// snapshots. Counts accumulated so far carry over; the legacy
    /// accessors above keep working against the registered counters.
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry) {
        let bytes_read = registry.counter(
            "nucdb_index_bytes_read_total",
            "Postings bytes fetched from the on-disk index",
        );
        let lists_read = registry.counter(
            "nucdb_index_lists_read_total",
            "Inverted lists fetched from the on-disk index",
        );
        bytes_read.add(self.bytes_read.get());
        lists_read.add(self.lists_read.get());
        self.bytes_read = bytes_read;
        self.lists_read = lists_read;
    }

    /// The in-memory vocabulary, sorted by interval code. Exposed for
    /// introspection (`nucdb stat`) and health walks (`nucdb fsck`, the
    /// background scrubber); query paths go through the typed accessors.
    pub fn vocab(&self) -> &[VocabEntry] {
        &self.vocab
    }

    /// Does the file carry stored checksums (v3/v4)? Legacy v2 files
    /// verify structurally only.
    pub fn has_checksums(&self) -> bool {
        self.list_crcs.is_some()
    }

    /// On-disk format name, from the magic the file was opened with.
    pub fn format(&self) -> &'static str {
        if self.per_block_crcs {
            "NUCIDX04"
        } else if self.list_crcs.is_some() {
            "NUCIDX03"
        } else {
            "NUCIDX02"
        }
    }

    /// Byte offset where the postings blob begins — equivalently, the
    /// size of the header region a [`OnDiskIndex::scrub_header`] pass
    /// re-reads.
    pub fn blob_start(&self) -> u64 {
        self.blob_start
    }

    /// Re-read the header region (`[0, blob_start)`) from disk and
    /// re-verify it: magic, stored header CRC (v3/v4), and full field
    /// structure. Returns the bytes verified. Unlike
    /// [`OnDiskIndex::open`] — which parses the header once — this reads
    /// through the live file handle, so it observes damage that arrived
    /// after open (and injected faults under
    /// [`OnDiskIndex::open_faulty`]). Does not touch the query I/O
    /// counters.
    pub fn scrub_header(&self) -> Result<u64, IndexError> {
        let mut buf = vec![0u8; self.blob_start as usize];
        self.file.read_exact_at(&mut buf, 0)?;
        let mut input = CountingReader::new(&buf[..]);
        read_header(&mut input)?;
        Ok(self.blob_start)
    }

    /// Fetch and fully verify the list at vocabulary position `idx`
    /// (panics if out of range — callers iterate `0..vocab().len()`).
    /// Checks the stored list CRC (v3), or the skip-table CRC plus every
    /// block payload CRC (v4); v2 lists, which carry no checksums, are
    /// structurally decoded instead. Returns the list bytes verified.
    /// Does not touch the query I/O counters, so a background scrub
    /// never distorts `nucdb_index_bytes_read_total`.
    pub fn verify_list_at(&self, idx: usize) -> Result<u64, IndexError> {
        let entry = &self.vocab[idx];
        let mut buf = vec![0u8; entry.len as usize];
        self.file
            .read_exact_at(&mut buf, self.blob_start + entry.offset)?;
        if let Some(crcs) = &self.list_crcs {
            let expected = crcs[idx];
            let covered = if self.per_block_crcs {
                let skip_len = crate::block::skip_table_len(entry.df);
                if buf.len() < skip_len {
                    return Err(IndexError::bad_at(
                        "list shorter than its skip table",
                        "list",
                        self.blob_start + entry.offset,
                    ));
                }
                &buf[..skip_len]
            } else {
                &buf[..]
            };
            let actual = crc32(covered);
            if actual != expected {
                return Err(IndexError::checksum(
                    "list",
                    self.blob_start + entry.offset,
                    expected,
                    actual,
                ));
            }
            if self.per_block_crcs {
                crate::block::verify_block_list(&buf, entry.df)
                    .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))?;
            }
        } else {
            // No stored checksum: decoding is the only verification.
            decode_counts_with(
                &buf,
                entry.df,
                self.num_records(),
                &self.record_lens,
                self.codec,
                self.params.granularity,
                |_, _| {},
            )
            .map_err(|e| e.with_base_offset(self.blob_start + entry.offset))?;
        }
        Ok(entry.len as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use crate::stopping::StopPolicy;
    use nucdb_seq::random::{CollectionSpec, SyntheticCollection};

    fn build_sample(seed: u64, params: IndexParams) -> CompressedIndex {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(seed));
        let mut builder = IndexBuilder::new(params);
        for record in &coll.records {
            builder.add_record(&record.seq.representative_bases());
        }
        builder.finish()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nucdb_disk_{}_{}", name, std::process::id()))
    }

    #[test]
    fn write_load_round_trip() {
        let index = build_sample(41, IndexParams::new(8));
        let path = temp_path("rt");
        write_index(&index, &path).unwrap();
        let loaded = load_index(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        assert_eq!(loaded.params(), index.params());
        assert_eq!(loaded.num_records(), index.num_records());
        assert_eq!(loaded.record_lens(), index.record_lens());
        assert_eq!(loaded.vocab(), index.vocab());
        assert_eq!(loaded.blob(), index.blob());
    }

    #[test]
    fn legacy_v2_round_trip() {
        let index = build_sample(51, IndexParams::new(8));
        let path = temp_path("v2rt");
        write_index_v2(&index, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC_V2);

        let loaded = load_index(&path).unwrap();
        assert_eq!(loaded.params(), index.params());
        assert_eq!(loaded.vocab(), index.vocab());
        assert_eq!(loaded.blob(), index.blob());

        let disk = OnDiskIndex::open(&path).unwrap();
        for entry in index.vocab().iter().step_by(11) {
            assert_eq!(
                disk.postings(entry.code).unwrap().unwrap(),
                index.postings(entry.code).unwrap().unwrap()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn round_trip_preserves_stopping_and_codec() {
        let params = IndexParams::new(6).with_stopping(StopPolicy::DfFraction(0.25));
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(42));
        let mut builder = IndexBuilder::new(params.clone()).with_codec(ListCodec::Delta);
        for record in &coll.records {
            builder.add_record(&record.seq.representative_bases());
        }
        let index = builder.finish();
        let path = temp_path("meta");
        write_index(&index, &path).unwrap();
        let loaded = load_index(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded.params().stopping, Some(StopPolicy::DfFraction(0.25)));
        assert_eq!(loaded.codec(), ListCodec::Delta);
        assert_eq!(loaded.decode_all().unwrap(), index.decode_all().unwrap());
    }

    #[test]
    fn on_disk_postings_match_in_memory() {
        let index = build_sample(43, IndexParams::new(8));
        let path = temp_path("od");
        write_index(&index, &path).unwrap();
        let disk = OnDiskIndex::open(&path).unwrap();

        assert_eq!(disk.num_records(), index.num_records());
        assert_eq!(disk.distinct_intervals(), index.distinct_intervals());
        for entry in index.vocab().iter().step_by(17) {
            let from_disk = disk.postings(entry.code).unwrap().unwrap();
            let from_mem = index.postings(entry.code).unwrap().unwrap();
            assert_eq!(from_disk, from_mem, "code {}", entry.code);
            assert_eq!(disk.df(entry.code), entry.df);
        }
        assert!(disk.postings(u64::MAX).unwrap().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn io_counters_track_reads() {
        let index = build_sample(44, IndexParams::new(8));
        let path = temp_path("ctr");
        write_index(&index, &path).unwrap();
        let disk = OnDiskIndex::open(&path).unwrap();

        assert_eq!(disk.bytes_read(), 0);
        let entry = index.vocab()[0];
        disk.postings(entry.code).unwrap().unwrap();
        assert_eq!(disk.bytes_read(), entry.len as u64);
        assert_eq!(disk.lists_read(), 1);
        // Absent code costs nothing.
        disk.postings(u64::MAX).unwrap();
        assert_eq!(disk.lists_read(), 1);
        disk.reset_io_counters();
        assert_eq!(disk.bytes_read(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_fetch_matches_materializing_fetch() {
        let index = build_sample(47, IndexParams::new(8));
        let path = temp_path("strm");
        write_index(&index, &path).unwrap();
        let disk = OnDiskIndex::open(&path).unwrap();

        let mut io_buf = Vec::new();
        for entry in index.vocab().iter().step_by(13) {
            let materialized = disk.postings(entry.code).unwrap().unwrap();
            let mut streamed: Vec<(u32, u32)> = Vec::new();
            let df = disk
                .postings_with(entry.code, &mut io_buf, |r, o| streamed.push((r, o)))
                .unwrap()
                .unwrap();
            assert_eq!(df, entry.df);
            let expect: Vec<(u32, u32)> = materialized
                .entries
                .iter()
                .flat_map(|p| p.offsets.iter().map(move |&o| (p.record, o)))
                .collect();
            assert_eq!(streamed, expect, "code {}", entry.code);

            let counts = disk.counts(entry.code).unwrap().unwrap();
            let mut streamed_counts: Vec<(u32, u32)> = Vec::new();
            disk.counts_with(entry.code, &mut io_buf, |r, c| streamed_counts.push((r, c)))
                .unwrap()
                .unwrap();
            assert_eq!(streamed_counts, counts, "code {}", entry.code);
        }
        assert!(disk
            .postings_with(u64::MAX, &mut io_buf, |_, _| {})
            .unwrap()
            .is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_fetches_agree_with_sequential() {
        let index = build_sample(48, IndexParams::new(8));
        let path = temp_path("conc");
        write_index(&index, &path).unwrap();
        let disk = OnDiskIndex::open(&path).unwrap();

        let codes: Vec<u64> = index.vocab().iter().step_by(7).map(|e| e.code).collect();
        let expected: Vec<PostingsList> = codes
            .iter()
            .map(|&c| index.postings(c).unwrap().unwrap())
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (disk, codes, expected) = (&disk, &codes, &expected);
                scope.spawn(move || {
                    for (code, expect) in codes.iter().zip(expected) {
                        assert_eq!(&disk.postings(*code).unwrap().unwrap(), expect);
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }

    fn build_block_sample(seed: u64) -> CompressedIndex {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(seed));
        let mut builder = IndexBuilder::new(IndexParams::new(8)).with_codec(ListCodec::Block);
        for record in &coll.records {
            builder.add_record(&record.seq.representative_bases());
        }
        builder.finish()
    }

    #[test]
    fn block_index_round_trips_as_v4() {
        let index = build_block_sample(61);
        let path = temp_path("v4rt");
        write_index(&index, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC_V4);

        let loaded = load_index(&path).unwrap();
        assert_eq!(loaded.params(), index.params());
        assert_eq!(loaded.codec(), ListCodec::Block);
        assert_eq!(loaded.vocab(), index.vocab());
        assert_eq!(loaded.blob(), index.blob());
        assert_eq!(loaded.max_counts(), index.max_counts());
        assert!(loaded.max_counts().is_some());

        let disk = OnDiskIndex::open(&path).unwrap();
        for entry in index.vocab().iter().step_by(11) {
            assert_eq!(
                disk.postings(entry.code).unwrap().unwrap(),
                index.postings(entry.code).unwrap().unwrap()
            );
            assert_eq!(
                disk.list_max_count(entry.code),
                index.list_max_count(entry.code)
            );
        }
        assert_eq!(disk.list_max_count(u64::MAX), Some(0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_block_codecs_still_write_v3() {
        let index = build_sample(62, IndexParams::new(8));
        let path = temp_path("still_v3");
        write_index(&index, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], MAGIC_V3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn block_index_survives_v2_writer_and_rewrites_as_v4() {
        // The legacy writer has no CRCs or max counts but carries the
        // blob (skip tables included) verbatim; a reload can recompute
        // max counts and produce a v4 file again.
        let index = build_block_sample(63);
        let path = temp_path("v4v2");
        write_index_v2(&index, &path).unwrap();
        let loaded = load_index(&path).unwrap();
        assert_eq!(loaded.blob(), index.blob());
        assert_eq!(loaded.max_counts(), None);
        let path4 = temp_path("v4v2b");
        write_index(&loaded, &path4).unwrap();
        let again = load_index(&path4).unwrap();
        assert_eq!(again.max_counts(), index.max_counts());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path4);
    }

    #[test]
    fn corrupt_block_detected_at_load_and_fetch_names_the_block() {
        let index = build_block_sample(64);
        let path = temp_path("v4corr");
        write_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let blob_start = bytes.len() - index.blob().len();
        // Pick a list with at least one block and flip a payload byte
        // (past the skip table).
        let entry = *index
            .vocab()
            .iter()
            .max_by_key(|e| e.df)
            .expect("nonempty index");
        let skip_len = crate::block::skip_table_len(entry.df);
        let victim = blob_start + entry.offset as usize + skip_len;
        bytes[victim] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        // Whole-file load: rejected, naming the block at its absolute
        // file offset.
        match load_index(&path) {
            Err(IndexError::Corruption {
                section, offset, ..
            }) => {
                assert_eq!(section, "block");
                assert_eq!(
                    offset,
                    (blob_start + entry.offset as usize + skip_len) as u64
                );
            }
            other => panic!("expected block corruption, got {other:?}"),
        }

        // pread path: the skip table verifies at fetch, the corrupt
        // payload is caught at decode.
        let disk = OnDiskIndex::open(&path).unwrap();
        match disk.postings(entry.code) {
            Err(IndexError::Corruption { section, .. }) => assert_eq!(section, "block"),
            other => panic!("expected fetch-time block corruption, got {other:?}"),
        }
        // Other lists are unaffected.
        let other = index.vocab().iter().find(|e| e.code != entry.code).unwrap();
        assert_eq!(
            disk.postings(other.code).unwrap(),
            index.postings(other.code).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_skip_table_detected_as_list_corruption() {
        let index = build_block_sample(65);
        let path = temp_path("v4skip");
        write_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let blob_start = bytes.len() - index.blob().len();
        let entry = index.vocab()[0];
        // First byte of the first skip entry.
        bytes[blob_start + entry.offset as usize] ^= 0x02;
        std::fs::write(&path, &bytes).unwrap();
        match load_index(&path) {
            Err(IndexError::Corruption { section, .. }) => assert_eq!(section, "list"),
            other => panic!("expected list corruption, got {other:?}"),
        }
        let disk = OnDiskIndex::open(&path).unwrap();
        match disk.postings(entry.code) {
            Err(IndexError::Corruption { section, .. }) => assert_eq!(section, "list"),
            other => panic!("expected fetch-time list corruption, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v4_streams_report_block_counters() {
        let index = build_block_sample(66);
        let path = temp_path("v4strm");
        write_index(&index, &path).unwrap();
        let disk = OnDiskIndex::open(&path).unwrap();
        struct Collect(Vec<(u32, u32)>);
        impl PostingsVisitor for Collect {
            fn visit(&mut self, record: u32, value: u32) {
                self.0.push((record, value));
            }
        }
        let mut io_buf = Vec::new();
        for entry in index.vocab().iter().step_by(9) {
            let mut visitor = Collect(Vec::new());
            let stats = disk
                .postings_stream(entry.code, &mut io_buf, &mut visitor)
                .unwrap()
                .unwrap();
            assert_eq!(stats.df, entry.df);
            assert_eq!(stats.ids_decoded, entry.df as u64);
            assert_eq!(
                stats.blocks_decoded as usize,
                (entry.df as usize).div_ceil(crate::block::BLOCK_LEN)
            );
            assert_eq!(stats.bytes_read, entry.len as u64);
            let expect: Vec<(u32, u32)> = index
                .postings(entry.code)
                .unwrap()
                .unwrap()
                .entries
                .iter()
                .flat_map(|p| p.offsets.iter().map(move |&o| (p.record, o)))
                .collect();
            assert_eq!(visitor.0, expect);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let index = build_sample(45, IndexParams::new(6));
        let path = temp_path("mag");
        write_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_index(&path), Err(IndexError::BadFormat(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_header_detected_by_crc() {
        let index = build_sample(49, IndexParams::new(6));
        let path = temp_path("hcrc");
        write_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // First header byte (after the 16-byte prefix) is `k`.
        bytes[16] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match load_index(&path) {
            Err(IndexError::Corruption { section, .. }) => assert_eq!(section, "header"),
            other => panic!("expected header corruption, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_list_detected_on_load_and_on_fetch() {
        let index = build_sample(50, IndexParams::new(6));
        let path = temp_path("lcrc");
        write_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // final blob byte: inside the last list
        bytes[last] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();

        match load_index(&path) {
            Err(IndexError::Corruption {
                section, offset, ..
            }) => {
                assert_eq!(section, "list");
                assert!(offset <= last as u64);
            }
            other => panic!("expected list corruption, got {other:?}"),
        }

        // The pread path opens fine (header intact) but must refuse the
        // corrupt list the moment it is fetched.
        let disk = OnDiskIndex::open(&path).unwrap();
        let last_entry = index.vocab().last().unwrap();
        match disk.counts(last_entry.code) {
            Err(IndexError::Corruption { section, .. }) => assert_eq!(section, "list"),
            other => panic!("expected fetch-time corruption, got {other:?}"),
        }
        // Untouched lists still fetch and decode.
        let first_entry = index.vocab().first().unwrap();
        assert_eq!(
            disk.counts(first_entry.code).unwrap(),
            index.counts(first_entry.code).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_file_rejected() {
        let index = build_sample(46, IndexParams::new(6));
        let path = temp_path("trunc");
        write_index(&index, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_index(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_index_round_trips() {
        let index = IndexBuilder::new(IndexParams::new(8)).finish();
        let path = temp_path("empty");
        write_index(&index, &path).unwrap();
        let loaded = load_index(&path).unwrap();
        assert_eq!(loaded.num_records(), 0);
        assert_eq!(loaded.distinct_intervals(), 0);
        let disk = OnDiskIndex::open(&path).unwrap();
        assert!(disk.postings(0).unwrap().is_none());
        let _ = std::fs::remove_file(&path);
    }
}
