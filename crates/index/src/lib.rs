//! # nucdb-index
//!
//! The compressed inverted *interval* index at the heart of the paper's
//! partitioned search. An interval is a fixed-length substring; the index
//! maps every distinct interval of the collection to a postings list of
//! `(record, offsets)` pairs. Coarse search reads only the lists of the
//! query's intervals — a tiny fraction of the collection — instead of
//! scanning every record.
//!
//! The pieces:
//!
//! * [`interval`] — interval extraction and the index parameters.
//! * [`postings`] — decoded postings lists and the in-memory accumulator.
//! * [`compress`] — the compressed list layout: Golomb-coded record gaps
//!   (parameter fitted per list), Elias-gamma offset counts, Golomb-coded
//!   offset gaps. This is what holds the index "to an acceptable level".
//! * [`block`] — the fast-decode tier: fixed 128-posting bitpacked
//!   blocks with per-block skip entries and CRCs (`ListCodec::Block`,
//!   on disk `NUCIDX04`), decoded by a branchless word-parallel kernel
//!   that can skip whole blocks.
//! * [`stopping`] — index stopping: discarding intervals that occur in too
//!   many records, which carry little information but much index space.
//! * [`builder`] — index construction: single-pass in-memory, chunked
//!   external build with run spilling and multiway merge (the collection
//!   need not fit in memory), and a parallel variant.
//! * [`manifest`] — the crash-safe `MANIFEST` naming the segments of a
//!   live (incrementally ingested) directory, swapped atomically on
//!   every flush/compaction.
//! * [`shard`] — the `SHARDS` manifest describing a sharded database
//!   root: per-shard record counts fix the record-id bases that make
//!   scatter-gather answers bit-identical to a joint build.
//! * [`disk`] — the on-disk index format and a reader that fetches lists
//!   on demand with lock-free positional reads, tracking bytes read (the
//!   paper's disk-cost story).
//! * [`pread`] — the positional-read primitive shared by the on-disk
//!   index and store, with bounded retry of transient errors.
//! * [`durable`] — durability primitives: CRC-32, bounded streaming
//!   reads, and write-to-temp + fsync + atomic-rename persistence.
//! * [`fault`] — deterministic I/O fault injection (short reads,
//!   transient errors, bit flips, truncation) for durability tests.
//! * [`stats`] — size accounting used by experiments E1/E4/E5.
//!
//! Decoding comes in two shapes: materialising (`decode_postings`,
//! `decode_counts`) and streaming (`decode_postings_with`,
//! `decode_counts_with`), the latter driving a visitor per entry so the
//! hot coarse-search path never allocates per-list structures.

#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod compress;
pub mod disk;
pub mod durable;
pub mod error;
pub mod fault;
pub mod interval;
pub mod manifest;
pub mod merge;
pub mod postings;
pub mod pread;
pub mod shard;
pub mod stats;
pub mod stopping;

pub use block::{skip_table_len, BLOCK_LEN, SKIP_ENTRY_BYTES};
pub use builder::{build_chunked, build_parallel, IndexBuilder};
pub use compress::{
    decode_counts, decode_counts_with, decode_postings, decode_postings_with, encode_postings,
    CompressedIndex, FetchStats, ListCodec, PostingsVisitor, VocabEntry,
};
pub use disk::{load_index, load_index_from, write_index, write_index_v2, OnDiskIndex};
pub use durable::{crc32, AtomicFile, CountingReader, Crc32};
pub use error::{FormatViolation, IndexError};
pub use fault::{FaultPlan, FaultyFile, FaultyReader};
pub use interval::{Granularity, IndexParams};
pub use manifest::{Manifest, SegmentMeta, MANIFEST_FILE};
pub use merge::{apply_stopping, merge_indexes};
pub use postings::{Posting, PostingsList};
pub use pread::{PositionalReader, TRANSIENT_RETRY_LIMIT};
pub use shard::{shard_dir_name, ShardManifest, ShardMeta, SHARD_MANIFEST_FILE};
pub use stats::IndexStats;
pub use stopping::StopPolicy;
