//! Interval extraction and index parameters.
//!
//! The paper's central design decision is to index **fixed-length
//! substrings** ("intervals"): unlike variable-length words in text, a DNA
//! sequence has no natural token boundary, so every overlapping window of
//! length `k` becomes an indexing unit. The experiments sweep `k` (E1) and
//! the extraction stride.

use nucdb_seq::kmer::{vocabulary_size, KmerIter, MAX_K};
use nucdb_seq::Base;

use crate::stopping::StopPolicy;

/// Postings granularity: how much the index records about each
/// occurrence.
///
/// The CAFE line evaluates both: offset-level postings enable
/// diagonal-structured (frame) coarse ranking and banded fine alignment,
/// at several bits per *occurrence*; record-level postings store only
/// `(record, occurrence count)` — a much smaller index whose coarse
/// ranking is count-based and whose fine search must align whole records.
/// Experiment **E12** measures the trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Granularity {
    /// Record ids, per-record counts, and every in-record offset.
    #[default]
    Offsets,
    /// Record ids and per-record counts only.
    Records,
}

impl Granularity {
    /// Stable on-disk tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Granularity::Offsets => 0,
            Granularity::Records => 1,
        }
    }

    /// Inverse of [`Granularity::tag`].
    pub(crate) fn from_tag(tag: u8) -> Result<Granularity, crate::error::IndexError> {
        Ok(match tag {
            0 => Granularity::Offsets,
            1 => Granularity::Records,
            _ => {
                return Err(crate::error::IndexError::bad_in(
                    "unknown granularity tag",
                    "params",
                ))
            }
        })
    }
}

/// Parameters fixed at index-build time.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexParams {
    /// Interval length in bases (1..=32). The paper's sweet spot for
    /// nucleotide data is 8–12.
    pub k: usize,
    /// Extraction stride: 1 indexes every overlapping interval; larger
    /// strides trade index size for coarse-ranking resolution.
    pub stride: usize,
    /// Optional index stopping policy (drop uninformative frequent
    /// intervals).
    pub stopping: Option<StopPolicy>,
    /// Postings granularity.
    pub granularity: Granularity,
}

impl IndexParams {
    /// Overlapping intervals of length `k`, offset granularity, no
    /// stopping.
    pub fn new(k: usize) -> IndexParams {
        assert!((1..=MAX_K).contains(&k), "interval length out of range");
        IndexParams {
            k,
            stride: 1,
            stopping: None,
            granularity: Granularity::Offsets,
        }
    }

    /// Set the postings granularity.
    pub fn with_granularity(mut self, granularity: Granularity) -> IndexParams {
        self.granularity = granularity;
        self
    }

    /// Set the stride.
    pub fn with_stride(mut self, stride: usize) -> IndexParams {
        assert!(stride >= 1, "stride must be positive");
        self.stride = stride;
        self
    }

    /// Set the stopping policy.
    pub fn with_stopping(mut self, policy: StopPolicy) -> IndexParams {
        self.stopping = Some(policy);
        self
    }

    /// Upper bound on the interval vocabulary, `4^k`.
    pub fn vocabulary_bound(&self) -> u64 {
        vocabulary_size(self.k)
    }

    /// Extract `(offset, interval_code)` pairs from a record at this
    /// parameter set.
    pub fn extract<'a>(&self, bases: &'a [Base]) -> impl Iterator<Item = (u32, u64)> + 'a {
        let stride = self.stride;
        KmerIter::new(bases, self.k)
            .filter(move |(pos, _)| pos % stride == 0)
            .map(|(pos, code)| (pos as u32, code))
    }

    /// Number of intervals a record of length `len` yields.
    pub fn intervals_in(&self, len: usize) -> usize {
        if len < self.k {
            0
        } else {
            (len - self.k) / self.stride + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    #[test]
    fn extraction_counts() {
        let b = bases(b"ACGTACGTAC"); // len 10
        let p = IndexParams::new(4);
        assert_eq!(p.extract(&b).count(), 7);
        assert_eq!(p.intervals_in(10), 7);
        let p2 = IndexParams::new(4).with_stride(3);
        let positions: Vec<u32> = p2.extract(&b).map(|(pos, _)| pos).collect();
        assert_eq!(positions, vec![0, 3, 6]);
        assert_eq!(p2.intervals_in(10), 3);
    }

    #[test]
    fn short_record_yields_nothing() {
        let b = bases(b"ACG");
        let p = IndexParams::new(8);
        assert_eq!(p.extract(&b).count(), 0);
        assert_eq!(p.intervals_in(3), 0);
        assert_eq!(p.intervals_in(8), 1);
    }

    #[test]
    fn vocabulary_bound() {
        assert_eq!(IndexParams::new(8).vocabulary_bound(), 65_536);
        assert_eq!(IndexParams::new(2).vocabulary_bound(), 16);
    }

    #[test]
    #[should_panic(expected = "interval length out of range")]
    fn zero_k_rejected() {
        IndexParams::new(0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = IndexParams::new(4).with_stride(0);
    }
}
