//! The compressed inverted index: per-interval postings lists stored as
//! gap-coded bit streams.
//!
//! The paper's layout (per list, for an interval occurring in `df` of the
//! collection's `N` records):
//!
//! ```text
//! for each record, ascending:
//!     record gap      Golomb, parameter fitted to (N, df)
//!     offset count-1  Elias gamma
//!     offset gaps     Golomb, parameter fitted to (record length, count)
//! ```
//!
//! The Golomb parameters are *derived*, not stored: both are functions of
//! values the index already holds (`N`, `df`, the record-length table), so
//! encode and decode always agree. Lists are byte-aligned so each can be
//! fetched independently from disk — the property that lets fine search
//! visit records in relevance order.
//!
//! [`ListCodec`] swaps the gap codes for the comparison experiment E5
//! (all-gamma, all-delta, variable-byte, fixed-width).

use nucdb_codec::{BitReader, BitWriter, Delta, FixedWidth, Gamma, Golomb, IntCodec, VByte};

use crate::error::IndexError;
use crate::interval::{Granularity, IndexParams};
use crate::postings::{Posting, PostingsList};
use crate::stats::IndexStats;

/// Which integer codes the list layout uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ListCodec {
    /// The paper's scheme: fitted Golomb gaps, gamma counts.
    #[default]
    Paper,
    /// Elias gamma for everything.
    Gamma,
    /// Elias delta for everything.
    Delta,
    /// Variable-byte for everything.
    VByte,
    /// Fixed-width binary sized to the universe (the uncompressed
    /// comparator).
    Fixed,
    /// Binary interpolative coding (Moffat–Stuiver) for the sorted record
    /// and offset lists, gamma for counts: the strongest classic
    /// compressor for clustered postings.
    Interp,
    /// Fixed 128-posting blocks, each bitpacked at its own width and
    /// fronted by a skip entry (max record id, byte extent, CRC-32): the
    /// fast-decode tier, serialized on disk as `NUCIDX04`. See
    /// [`crate::block`].
    Block,
}

impl ListCodec {
    /// Stable on-disk tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            ListCodec::Paper => 0,
            ListCodec::Gamma => 1,
            ListCodec::Delta => 2,
            ListCodec::VByte => 3,
            ListCodec::Fixed => 4,
            ListCodec::Interp => 5,
            ListCodec::Block => 6,
        }
    }

    /// Inverse of [`ListCodec::tag`].
    pub(crate) fn from_tag(tag: u8) -> Result<ListCodec, IndexError> {
        Ok(match tag {
            0 => ListCodec::Paper,
            1 => ListCodec::Gamma,
            2 => ListCodec::Delta,
            3 => ListCodec::VByte,
            4 => ListCodec::Fixed,
            5 => ListCodec::Interp,
            6 => ListCodec::Block,
            _ => return Err(IndexError::bad_in("unknown list codec tag", "params")),
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ListCodec::Paper => "golomb+gamma (paper)",
            ListCodec::Gamma => "gamma",
            ListCodec::Delta => "delta",
            ListCodec::VByte => "vbyte",
            ListCodec::Fixed => "fixed-width",
            ListCodec::Interp => "interpolative",
            ListCodec::Block => "block-128",
        }
    }

    /// The coder for gaps drawn from `n` hits over a universe of
    /// `universe` slots.
    fn gap_coder(self, universe: u64, n: u64) -> Coder {
        match self {
            ListCodec::Paper => Coder::Golomb(Golomb::fit(universe.max(1), n)),
            ListCodec::Gamma => Coder::Gamma,
            ListCodec::Delta => Coder::Delta,
            ListCodec::VByte => Coder::VByte,
            ListCodec::Fixed => Coder::Fixed(FixedWidth::for_max(universe.max(1))),
            ListCodec::Interp => {
                unreachable!("interpolative lists are coded whole, not per gap")
            }
            ListCodec::Block => {
                unreachable!("block lists are coded by the block module, not per gap")
            }
        }
    }

    /// The coder for small counts (offset counts per record).
    fn count_coder(self) -> Coder {
        match self {
            ListCodec::Paper | ListCodec::Gamma | ListCodec::Interp => Coder::Gamma,
            ListCodec::Delta => Coder::Delta,
            ListCodec::VByte => Coder::VByte,
            ListCodec::Fixed => Coder::Fixed(FixedWidth::new(32)),
            ListCodec::Block => {
                unreachable!("block lists are coded by the block module, not per count")
            }
        }
    }
}

/// Enum dispatch over the codecs (avoids boxing in the decode loop).
enum Coder {
    Golomb(Golomb),
    Gamma,
    Delta,
    VByte,
    Fixed(FixedWidth),
}

impl Coder {
    #[inline]
    fn encode(&self, value: u64, w: &mut BitWriter) {
        match self {
            Coder::Golomb(c) => c.encode(value, w),
            Coder::Gamma => Gamma.encode(value, w),
            Coder::Delta => Delta.encode(value, w),
            Coder::VByte => VByte.encode(value, w),
            Coder::Fixed(c) => c.encode(value, w),
        }
    }

    #[inline]
    fn decode(&self, r: &mut BitReader) -> Result<u64, nucdb_codec::CodecError> {
        match self {
            Coder::Golomb(c) => c.decode(r),
            Coder::Gamma => Gamma.decode(r),
            Coder::Delta => Delta.decode(r),
            Coder::VByte => VByte.decode(r),
            Coder::Fixed(c) => c.decode(r),
        }
    }
}

/// Per-list work counters reported by the streaming fetch paths: how
/// much the caller actually paid to evaluate one list. `bytes_read` is
/// the list's full byte length (skipping saves decode work, not I/O);
/// `blocks_decoded`/`blocks_skipped` are zero for non-block codecs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// The list's document frequency.
    pub df: u32,
    /// Compressed bytes fetched for the list.
    pub bytes_read: u64,
    /// Record ids actually decoded (skipped blocks excluded).
    pub ids_decoded: u64,
    /// Blocks CRC-verified and unpacked (block codec only).
    pub blocks_decoded: u32,
    /// Blocks refused by the visitor's skip callback (block codec only).
    pub blocks_skipped: u32,
}

impl FetchStats {
    /// Counters for a fully-decoded non-block list of `df` entries.
    pub fn plain(df: u32) -> FetchStats {
        FetchStats {
            df,
            bytes_read: 0,
            ids_decoded: df as u64,
            blocks_decoded: 0,
            blocks_skipped: 0,
        }
    }
}

/// Visitor driven by the streaming fetch paths. `visit` receives
/// `(record, offset)` pairs on the postings paths and `(record, count)`
/// pairs on the counts paths, always in ascending record order.
///
/// On a block-coded list, `skip_block(lo, hi)` is consulted before each
/// block is checksummed or unpacked: `lo..=hi` bounds every record id
/// the block can contain, and returning `true` skips the block entirely.
/// Non-block codecs never call it — implementations must stay correct
/// when every block is visited.
pub trait PostingsVisitor {
    /// One posting (or one record's count).
    fn visit(&mut self, record: u32, value: u32);

    /// May the decoder drop the block covering records `lo..=hi`?
    fn skip_block(&mut self, lo: u32, hi: u32) -> bool {
        let _ = (lo, hi);
        false
    }
}

/// Adapter presenting a plain closure as a never-skipping
/// [`PostingsVisitor`].
struct FnVisitor<F>(F);

impl<F: FnMut(u32, u32)> PostingsVisitor for FnVisitor<F> {
    fn visit(&mut self, record: u32, value: u32) {
        (self.0)(record, value)
    }
}

/// Encode one postings list into a byte-aligned blob.
///
/// `record_lens` must cover every record id in the list. With
/// [`Granularity::Records`] only record gaps and occurrence counts are
/// written; offsets are dropped (the paper family's coarse-grained index
/// option). `ListCodec::Block` ignores `record_lens` (its widths are
/// stored, not fitted).
pub fn encode_postings(
    list: &PostingsList,
    num_records: u32,
    record_lens: &[u32],
    codec: ListCodec,
    granularity: Granularity,
) -> Vec<u8> {
    debug_assert!(list.is_well_formed());
    if codec == ListCodec::Block {
        return crate::block::encode_block_postings(list, granularity);
    }
    if codec == ListCodec::Interp {
        return encode_postings_interp(list, num_records, record_lens, granularity);
    }
    let df = list.df() as u64;
    let gap_coder = codec.gap_coder(num_records as u64, df);
    let count_coder = codec.count_coder();

    let mut w = BitWriter::with_capacity_bits(list.total_occurrences() * 12);
    let mut prev_record: i64 = -1;
    for posting in &list.entries {
        gap_coder.encode((posting.record as i64 - prev_record - 1) as u64, &mut w);
        prev_record = posting.record as i64;

        let count = posting.offsets.len() as u64;
        count_coder.encode(count - 1, &mut w);

        if granularity == Granularity::Records {
            continue;
        }
        let len = record_lens[posting.record as usize] as u64;
        let off_coder = codec.gap_coder(len.max(1), count);
        let mut prev_off: i64 = -1;
        for &off in &posting.offsets {
            off_coder.encode((off as i64 - prev_off - 1) as u64, &mut w);
            prev_off = off as i64;
        }
    }
    w.into_bytes()
}

/// Streaming decode of a blob produced by [`encode_postings`] at offset
/// granularity: `visit(record, offset)` is called for every posting, in
/// record order, offsets ascending within a record — no `PostingsList` is
/// materialised. `df` is the list's record count (stored in the
/// vocabulary, not in the blob).
///
/// On a decode error some prefix of the entries may already have been
/// visited; callers must treat the visited data as void when `Err` is
/// returned.
///
/// `ListCodec::Interp` codes whole lists recursively, so that branch
/// decodes into a scratch list internally before replaying it through the
/// visitor; every other codec streams straight off the bit reader.
pub fn decode_postings_with<F: FnMut(u32, u32)>(
    bytes: &[u8],
    df: u32,
    num_records: u32,
    record_lens: &[u32],
    codec: ListCodec,
    mut visit: F,
) -> Result<(), IndexError> {
    if codec == ListCodec::Block {
        let mut visitor = FnVisitor(&mut visit);
        crate::block::decode_block_stream(
            bytes,
            df,
            num_records,
            record_lens,
            Granularity::Offsets,
            true,
            &mut visitor,
        )?;
        return Ok(());
    }
    if codec == ListCodec::Interp {
        let (list, _) =
            decode_postings_interp(bytes, df, num_records, record_lens, Granularity::Offsets)?;
        for posting in &list.entries {
            for &off in &posting.offsets {
                visit(posting.record, off);
            }
        }
        return Ok(());
    }
    let gap_coder = codec.gap_coder(num_records as u64, df as u64);
    let count_coder = codec.count_coder();

    let mut r = BitReader::new(bytes);
    let mut prev_record: i64 = -1;
    for _ in 0..df {
        let record = (prev_record + 1 + gap_coder.decode(&mut r)? as i64) as u64;
        if record >= num_records as u64 {
            return Err(IndexError::bad_format("decoded record id out of range"));
        }
        let record = record as u32;
        prev_record = record as i64;

        let count = count_coder.decode(&mut r)? + 1;
        let len = record_lens[record as usize] as u64;
        if count > len {
            return Err(IndexError::bad_format("offset count exceeds record length"));
        }
        let off_coder = codec.gap_coder(len.max(1), count);
        let mut prev_off: i64 = -1;
        for _ in 0..count {
            let off = prev_off + 1 + off_coder.decode(&mut r)? as i64;
            if off >= len as i64 {
                return Err(IndexError::bad_format("decoded offset out of range"));
            }
            visit(record, off as u32);
            prev_off = off;
        }
    }
    Ok(())
}

/// Streaming decode of `(record, occurrence count)` pairs from a blob of
/// either granularity (offset-granularity blobs have their offsets walked
/// past without materialisation). Same visitor contract as
/// [`decode_postings_with`].
pub fn decode_counts_with<F: FnMut(u32, u32)>(
    bytes: &[u8],
    df: u32,
    num_records: u32,
    record_lens: &[u32],
    codec: ListCodec,
    granularity: Granularity,
    mut visit: F,
) -> Result<(), IndexError> {
    if codec == ListCodec::Block {
        let mut visitor = FnVisitor(&mut visit);
        crate::block::decode_block_stream(
            bytes,
            df,
            num_records,
            record_lens,
            granularity,
            false,
            &mut visitor,
        )?;
        return Ok(());
    }
    if codec == ListCodec::Interp {
        // The interpolative layout fronts records and counts, so a
        // counts-only decode never touches the offset section.
        let (list, counts) =
            decode_postings_interp(bytes, df, num_records, record_lens, Granularity::Records)?;
        for (posting, count) in list.entries.iter().zip(counts) {
            visit(posting.record, count);
        }
        return Ok(());
    }
    let gap_coder = codec.gap_coder(num_records as u64, df as u64);
    let count_coder = codec.count_coder();

    let mut r = BitReader::new(bytes);
    let mut prev_record: i64 = -1;
    for _ in 0..df {
        let record = (prev_record + 1 + gap_coder.decode(&mut r)? as i64) as u64;
        if record >= num_records as u64 {
            return Err(IndexError::bad_format("decoded record id out of range"));
        }
        let record = record as u32;
        prev_record = record as i64;

        let count = count_coder.decode(&mut r)? + 1;
        let len = record_lens[record as usize] as u64;
        if count > len {
            return Err(IndexError::bad_format("offset count exceeds record length"));
        }
        if granularity == Granularity::Offsets {
            // Walk past the offsets without materialising them.
            let off_coder = codec.gap_coder(len.max(1), count);
            for _ in 0..count {
                off_coder.decode(&mut r)?;
            }
        }
        visit(record, count as u32);
    }
    Ok(())
}

/// Decode a blob produced by [`encode_postings`] at offset granularity.
/// `df` is the list's record count (stored in the vocabulary, not in the
/// blob). Record-granularity blobs hold no offsets; use
/// [`decode_counts`] for those. The hot path streams instead: see
/// [`decode_postings_with`].
pub fn decode_postings(
    bytes: &[u8],
    df: u32,
    num_records: u32,
    record_lens: &[u32],
    codec: ListCodec,
) -> Result<PostingsList, IndexError> {
    if codec == ListCodec::Interp {
        return decode_postings_interp(bytes, df, num_records, record_lens, Granularity::Offsets)
            .map(|(list, _)| list);
    }
    let mut entries: Vec<Posting> = Vec::with_capacity(df as usize);
    decode_postings_with(
        bytes,
        df,
        num_records,
        record_lens,
        codec,
        |record, offset| {
            // Counts are >= 1, so every record's first offset arrives before
            // any of its later ones and grouping on the tail entry is exact.
            match entries.last_mut() {
                Some(posting) if posting.record == record => posting.offsets.push(offset),
                _ => entries.push(Posting {
                    record,
                    offsets: vec![offset],
                }),
            }
        },
    )?;
    Ok(PostingsList { entries })
}

/// Decode `(record, occurrence count)` pairs from a blob of either
/// granularity (offset-granularity blobs have their offsets decoded and
/// discarded). The hot path streams instead: see [`decode_counts_with`].
pub fn decode_counts(
    bytes: &[u8],
    df: u32,
    num_records: u32,
    record_lens: &[u32],
    codec: ListCodec,
    granularity: Granularity,
) -> Result<Vec<(u32, u32)>, IndexError> {
    let mut out = Vec::with_capacity(df as usize);
    decode_counts_with(
        bytes,
        df,
        num_records,
        record_lens,
        codec,
        granularity,
        |record, count| {
            out.push((record, count));
        },
    )?;
    Ok(out)
}

/// Interpolative layout: `interp(record ids) | gamma(count−1)* |
/// interp(offsets)*` — records and counts front the blob so counts-only
/// decoding never touches the offset section.
fn encode_postings_interp(
    list: &PostingsList,
    num_records: u32,
    record_lens: &[u32],
    granularity: Granularity,
) -> Vec<u8> {
    use nucdb_codec::{interpolative_encode, Gamma, IntCodec};
    let mut w = BitWriter::with_capacity_bits(list.total_occurrences() * 12);
    let records: Vec<u64> = list.entries.iter().map(|p| p.record as u64).collect();
    interpolative_encode(&records, 0, (num_records.max(1) - 1) as u64, &mut w);
    for posting in &list.entries {
        Gamma.encode(posting.offsets.len() as u64 - 1, &mut w);
    }
    if granularity == Granularity::Offsets {
        for posting in &list.entries {
            let offsets: Vec<u64> = posting.offsets.iter().map(|&o| o as u64).collect();
            let len = record_lens[posting.record as usize].max(1) as u64;
            interpolative_encode(&offsets, 0, len - 1, &mut w);
        }
    }
    w.into_bytes()
}

/// Inverse of [`encode_postings_interp`]; with `granularity == Records`
/// decoding stops after the counts section (whatever the blob holds
/// beyond it). Returns the list plus the per-record counts.
fn decode_postings_interp(
    bytes: &[u8],
    df: u32,
    num_records: u32,
    record_lens: &[u32],
    granularity: Granularity,
) -> Result<(PostingsList, Vec<u32>), IndexError> {
    use nucdb_codec::{interpolative_decode, Gamma, IntCodec};
    let mut r = BitReader::new(bytes);
    if num_records == 0 && df > 0 {
        return Err(IndexError::bad_format("postings in an empty collection"));
    }
    let records = if df == 0 {
        Vec::new()
    } else {
        interpolative_decode(df as usize, 0, (num_records - 1) as u64, &mut r)?
    };
    let mut counts = Vec::with_capacity(df as usize);
    for &record in &records {
        let count = Gamma.decode(&mut r)? + 1;
        if count > record_lens[record as usize].max(1) as u64 {
            return Err(IndexError::bad_format("offset count exceeds record length"));
        }
        counts.push(count as u32);
    }
    let mut entries = Vec::with_capacity(df as usize);
    for (&record, &count) in records.iter().zip(&counts) {
        let offsets = if granularity == Granularity::Offsets {
            let len = record_lens[record as usize].max(1) as u64;
            interpolative_decode(count as usize, 0, len - 1, &mut r)?
                .into_iter()
                .map(|o| o as u32)
                .collect()
        } else {
            Vec::new()
        };
        entries.push(Posting {
            record: record as u32,
            offsets,
        });
    }
    Ok((PostingsList { entries }, counts))
}

/// Vocabulary entry: where one interval's list lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VocabEntry {
    /// Packed interval code.
    pub code: u64,
    /// Byte offset of the list within the blob.
    pub offset: u64,
    /// Length of the list in bytes.
    pub len: u32,
    /// Document frequency (records containing the interval).
    pub df: u32,
}

/// An in-memory compressed inverted index.
///
/// Built by [`crate::builder::IndexBuilder`]; the on-disk variant with
/// on-demand list fetching is [`crate::disk::OnDiskIndex`].
#[derive(Debug, Clone)]
pub struct CompressedIndex {
    params: IndexParams,
    codec: ListCodec,
    record_lens: Vec<u32>,
    /// Sorted by code for binary-search lookup.
    vocab: Vec<VocabEntry>,
    /// Per-list maximum per-record occurrence count, parallel to `vocab`.
    /// Present only for the block codec (stored in `NUCIDX04` headers);
    /// it powers hopeless-block skipping in coarse search.
    max_counts: Option<Vec<u32>>,
    blob: Vec<u8>,
}

impl CompressedIndex {
    /// Assemble from already-grouped lists, which must arrive in strictly
    /// ascending code order.
    pub(crate) fn from_sorted_lists(
        params: IndexParams,
        codec: ListCodec,
        record_lens: Vec<u32>,
        lists: impl Iterator<Item = (u64, PostingsList)>,
    ) -> CompressedIndex {
        let num_records = record_lens.len() as u32;
        let mut vocab = Vec::new();
        let mut blob = Vec::new();
        let mut max_counts = (codec == ListCodec::Block).then(Vec::new);
        let mut prev_code: Option<u64> = None;
        for (code, list) in lists {
            assert!(
                prev_code.is_none_or(|p| p < code),
                "lists must arrive in ascending code order"
            );
            prev_code = Some(code);
            if list.df() == 0 {
                continue;
            }
            let bytes =
                encode_postings(&list, num_records, &record_lens, codec, params.granularity);
            vocab.push(VocabEntry {
                code,
                offset: blob.len() as u64,
                len: bytes.len() as u32,
                df: list.df() as u32,
            });
            if let Some(max_counts) = &mut max_counts {
                max_counts.push(
                    list.entries
                        .iter()
                        .map(|p| p.offsets.len() as u32)
                        .max()
                        .unwrap_or(0),
                );
            }
            blob.extend_from_slice(&bytes);
        }
        CompressedIndex {
            params,
            codec,
            record_lens,
            vocab,
            max_counts,
            blob,
        }
    }

    /// Reassemble from parts (used by the on-disk reader).
    /// `max_counts`, when present, must be parallel to `vocab`.
    pub(crate) fn from_parts(
        params: IndexParams,
        codec: ListCodec,
        record_lens: Vec<u32>,
        vocab: Vec<VocabEntry>,
        max_counts: Option<Vec<u32>>,
        blob: Vec<u8>,
    ) -> CompressedIndex {
        debug_assert!(max_counts.as_ref().is_none_or(|m| m.len() == vocab.len()));
        CompressedIndex {
            params,
            codec,
            record_lens,
            vocab,
            max_counts,
            blob,
        }
    }

    /// Index parameters.
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// The list codec in use.
    pub fn codec(&self) -> ListCodec {
        self.codec
    }

    /// Number of records indexed.
    pub fn num_records(&self) -> u32 {
        self.record_lens.len() as u32
    }

    /// Record length table.
    pub fn record_lens(&self) -> &[u32] {
        &self.record_lens
    }

    /// Number of distinct intervals present.
    pub fn distinct_intervals(&self) -> usize {
        self.vocab.len()
    }

    /// Vocabulary entries in ascending code order.
    pub fn vocab(&self) -> &[VocabEntry] {
        &self.vocab
    }

    /// The concatenated compressed lists.
    pub fn blob(&self) -> &[u8] {
        &self.blob
    }

    /// Document frequency of an interval, 0 if absent.
    pub fn df(&self, code: u64) -> u32 {
        self.entry(code).map_or(0, |e| e.df)
    }

    /// The vocabulary entry for `code`, if present.
    pub fn entry(&self, code: u64) -> Option<&VocabEntry> {
        self.vocab
            .binary_search_by_key(&code, |e| e.code)
            .ok()
            .map(|idx| &self.vocab[idx])
    }

    /// Per-list maximum per-record occurrence counts, parallel to the
    /// vocabulary — present only on block-codec indexes.
    pub fn max_counts(&self) -> Option<&[u32]> {
        self.max_counts.as_deref()
    }

    /// The largest per-record occurrence count in `code`'s list, when
    /// the index stores that bound (block codec). `None` means the bound
    /// is unavailable on this index; absent codes report `Some(0)`.
    pub fn list_max_count(&self, code: u64) -> Option<u32> {
        let max_counts = self.max_counts.as_ref()?;
        match self.vocab.binary_search_by_key(&code, |e| e.code) {
            Ok(idx) => Some(max_counts[idx]),
            Err(_) => Some(0),
        }
    }

    /// The max-count table, computing it by decoding every list when the
    /// index was loaded from a format that doesn't store it (an offline
    /// cost paid only when rewriting such an index as `NUCIDX04`).
    pub(crate) fn max_counts_or_compute(&self) -> Result<Vec<u32>, IndexError> {
        if let Some(max_counts) = &self.max_counts {
            return Ok(max_counts.clone());
        }
        self.vocab
            .iter()
            .map(|entry| {
                let mut max_count = 0u32;
                self.counts_with(entry.code, |_, count| max_count = max_count.max(count))?;
                Ok(max_count)
            })
            .collect()
    }

    /// Streaming postings fetch driving a [`PostingsVisitor`] and
    /// reporting work counters; on a block-codec index the visitor's
    /// `skip_block` may refuse hopeless blocks. `Ok(None)` if the
    /// interval is absent.
    pub fn postings_stream(
        &self,
        code: u64,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        if self.params.granularity == Granularity::Records {
            return Err(IndexError::Unsupported(
                "record-granularity index stores no offsets",
            ));
        }
        let Some(entry) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = &self.blob[entry.offset as usize..(entry.offset + entry.len as u64) as usize];
        let mut stats = FetchStats::plain(entry.df);
        stats.bytes_read = entry.len as u64;
        if self.codec == ListCodec::Block {
            let block = crate::block::decode_block_stream(
                bytes,
                entry.df,
                self.num_records(),
                &self.record_lens,
                Granularity::Offsets,
                true,
                visitor,
            )?;
            stats.ids_decoded = block.ids_decoded;
            stats.blocks_decoded = block.blocks_decoded;
            stats.blocks_skipped = block.blocks_skipped;
        } else {
            decode_postings_with(
                bytes,
                entry.df,
                self.num_records(),
                &self.record_lens,
                self.codec,
                |record, offset| visitor.visit(record, offset),
            )?;
        }
        Ok(Some(stats))
    }

    /// Streaming counts fetch: the counts-path twin of
    /// [`CompressedIndex::postings_stream`], working at either
    /// granularity.
    pub fn counts_stream(
        &self,
        code: u64,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        let Some(entry) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = &self.blob[entry.offset as usize..(entry.offset + entry.len as u64) as usize];
        let mut stats = FetchStats::plain(entry.df);
        stats.bytes_read = entry.len as u64;
        if self.codec == ListCodec::Block {
            let block = crate::block::decode_block_stream(
                bytes,
                entry.df,
                self.num_records(),
                &self.record_lens,
                self.params.granularity,
                false,
                visitor,
            )?;
            stats.ids_decoded = block.ids_decoded;
            stats.blocks_decoded = block.blocks_decoded;
            stats.blocks_skipped = block.blocks_skipped;
        } else {
            decode_counts_with(
                bytes,
                entry.df,
                self.num_records(),
                &self.record_lens,
                self.codec,
                self.params.granularity,
                |record, count| visitor.visit(record, count),
            )?;
        }
        Ok(Some(stats))
    }

    /// Decode the postings list for `code`; `Ok(None)` if the interval is
    /// absent (never indexed, or stopped). Errors on a record-granularity
    /// index, which stores no offsets — use [`CompressedIndex::counts`].
    pub fn postings(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
        if self.params.granularity == Granularity::Records {
            return Err(IndexError::Unsupported(
                "record-granularity index stores no offsets",
            ));
        }
        let Some(entry) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = &self.blob[entry.offset as usize..(entry.offset + entry.len as u64) as usize];
        decode_postings(
            bytes,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
        )
        .map(Some)
    }

    /// Streaming variant of [`CompressedIndex::postings`]: calls
    /// `visit(record, offset)` per posting without materialising a list,
    /// returning the list's `df` (`Ok(None)` if the interval is absent).
    pub fn postings_with<F: FnMut(u32, u32)>(
        &self,
        code: u64,
        visit: F,
    ) -> Result<Option<u32>, IndexError> {
        if self.params.granularity == Granularity::Records {
            return Err(IndexError::Unsupported(
                "record-granularity index stores no offsets",
            ));
        }
        let Some(entry) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = &self.blob[entry.offset as usize..(entry.offset + entry.len as u64) as usize];
        decode_postings_with(
            bytes,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
            visit,
        )?;
        Ok(Some(entry.df))
    }

    /// Streaming variant of [`CompressedIndex::counts`]: calls
    /// `visit(record, count)` per entry, returning the list's `df`
    /// (`Ok(None)` if the interval is absent). Works at either
    /// granularity.
    pub fn counts_with<F: FnMut(u32, u32)>(
        &self,
        code: u64,
        visit: F,
    ) -> Result<Option<u32>, IndexError> {
        let Some(entry) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = &self.blob[entry.offset as usize..(entry.offset + entry.len as u64) as usize];
        decode_counts_with(
            bytes,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
            self.params.granularity,
            visit,
        )?;
        Ok(Some(entry.df))
    }

    /// Decode `(record, occurrence count)` pairs for `code`; `Ok(None)`
    /// if the interval is absent. Works at either granularity.
    pub fn counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
        let Some(entry) = self.entry(code) else {
            return Ok(None);
        };
        let bytes = &self.blob[entry.offset as usize..(entry.offset + entry.len as u64) as usize];
        decode_counts(
            bytes,
            entry.df,
            self.num_records(),
            &self.record_lens,
            self.codec,
            self.params.granularity,
        )
        .map(Some)
    }

    /// Size accounting for the experiments.
    pub fn stats(&self) -> IndexStats {
        let mut postings_entries = 0u64;
        let mut total_offsets = 0u64;
        // df is per-list; total occurrences require decoding, which stats
        // callers accept (it is an offline measurement).
        for entry in &self.vocab {
            postings_entries += entry.df as u64;
            if let Ok(Some(counts)) = self.counts(entry.code) {
                total_offsets += counts.iter().map(|&(_, c)| c as u64).sum::<u64>();
            }
        }
        IndexStats {
            records: self.num_records() as u64,
            total_bases: self.record_lens.iter().map(|&l| l as u64).sum(),
            distinct_intervals: self.vocab.len() as u64,
            postings_entries,
            total_offsets,
            blob_bytes: self.blob.len() as u64,
            vocab_bytes: self.serialized_vocab_bytes(),
        }
    }

    /// Bytes the vocabulary occupies in the on-disk format (delta-coded
    /// codes, varint lengths and dfs) — the size that counts against the
    /// paper's index-overhead budget.
    fn serialized_vocab_bytes(&self) -> u64 {
        let varint_len = |v: u64| -> u64 { (64 - v.max(1).leading_zeros() as u64).div_ceil(7) };
        let mut total = 0u64;
        let mut prev_code = 0u64;
        for entry in &self.vocab {
            total += varint_len(entry.code - prev_code + 1)
                + varint_len(entry.len as u64)
                + varint_len(entry.df as u64);
            prev_code = entry.code;
        }
        if let Some(max_counts) = &self.max_counts {
            total += max_counts
                .iter()
                .map(|&m| varint_len(m as u64))
                .sum::<u64>();
        }
        total
    }

    /// Decode every list (for merging and tests). Offset granularity
    /// only.
    pub fn decode_all(&self) -> Result<Vec<(u64, PostingsList)>, IndexError> {
        self.vocab
            .iter()
            .map(|e| Ok((e.code, self.postings(e.code)?.expect("entry exists"))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_list() -> PostingsList {
        PostingsList {
            entries: vec![
                Posting {
                    record: 0,
                    offsets: vec![0, 1, 7],
                },
                Posting {
                    record: 3,
                    offsets: vec![99],
                },
                Posting {
                    record: 4,
                    offsets: vec![5, 50, 500],
                },
                Posting {
                    record: 90,
                    offsets: vec![1023],
                },
            ],
        }
    }

    fn lens() -> Vec<u32> {
        let mut lens = vec![64u32; 100];
        lens[0] = 10;
        lens[3] = 100;
        lens[4] = 600;
        lens[90] = 1024;
        lens
    }

    const ALL_CODECS: [ListCodec; 7] = [
        ListCodec::Paper,
        ListCodec::Gamma,
        ListCodec::Delta,
        ListCodec::VByte,
        ListCodec::Fixed,
        ListCodec::Interp,
        ListCodec::Block,
    ];

    #[test]
    fn encode_decode_round_trip_all_codecs() {
        let list = sample_list();
        let lens = lens();
        for codec in ALL_CODECS {
            let bytes = encode_postings(&list, 100, &lens, codec, Granularity::Offsets);
            let back = decode_postings(&bytes, list.df() as u32, 100, &lens, codec).unwrap();
            assert_eq!(back, list, "{}", codec.name());
            // Counts decode agrees for every codec too.
            let counts = decode_counts(
                &bytes,
                list.df() as u32,
                100,
                &lens,
                codec,
                Granularity::Offsets,
            )
            .unwrap();
            let expect: Vec<(u32, u32)> = list
                .entries
                .iter()
                .map(|p| (p.record, p.offsets.len() as u32))
                .collect();
            assert_eq!(counts, expect, "{}", codec.name());
        }
    }

    #[test]
    fn interp_compresses_clustered_lists_best() {
        // Clustered records (runs of consecutive ids): interpolative's
        // home turf.
        let list = PostingsList {
            entries: (0..300u32)
                .map(|i| {
                    let record = if i < 150 { i } else { 3000 + i };
                    Posting {
                        record,
                        offsets: vec![i % 50],
                    }
                })
                .collect(),
        };
        let lens = vec![64u32; 4000];
        let paper = encode_postings(&list, 4000, &lens, ListCodec::Paper, Granularity::Offsets);
        let interp = encode_postings(&list, 4000, &lens, ListCodec::Interp, Granularity::Offsets);
        assert!(
            interp.len() < paper.len(),
            "interp {} >= paper {}",
            interp.len(),
            paper.len()
        );
        let back =
            decode_postings(&interp, list.df() as u32, 4000, &lens, ListCodec::Interp).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn paper_codec_is_smallest_on_typical_lists() {
        // A dense-ish list with small gaps: the fitted Golomb layout must
        // beat the fixed-width layout and at worst roughly match vbyte.
        let list = PostingsList {
            entries: (0..200)
                .map(|i| Posting {
                    record: i * 3,
                    offsets: vec![(i * 7) % 900],
                })
                .collect(),
        };
        let lens = vec![1000u32; 600];
        let paper =
            encode_postings(&list, 600, &lens, ListCodec::Paper, Granularity::Offsets).len();
        let fixed =
            encode_postings(&list, 600, &lens, ListCodec::Fixed, Granularity::Offsets).len();
        let vbyte =
            encode_postings(&list, 600, &lens, ListCodec::VByte, Granularity::Offsets).len();
        assert!(paper < fixed, "paper {paper} >= fixed {fixed}");
        assert!(paper <= vbyte, "paper {paper} > vbyte {vbyte}");
    }

    #[test]
    fn adjacent_offsets_zero_gaps() {
        // Overlapping intervals produce adjacent offsets (gap-1 = 0).
        let list = PostingsList {
            entries: vec![Posting {
                record: 0,
                offsets: vec![4, 5, 6, 7, 8],
            }],
        };
        let lens = vec![32u32];
        for codec in [ListCodec::Paper, ListCodec::Gamma] {
            let bytes = encode_postings(&list, 1, &lens, codec, Granularity::Offsets);
            let back = decode_postings(&bytes, 1, 1, &lens, codec).unwrap();
            assert_eq!(back, list);
        }
    }

    #[test]
    fn decode_rejects_corrupt_record_id() {
        let list = sample_list();
        let lens = lens();
        let bytes = encode_postings(&list, 100, &lens, ListCodec::Fixed, Granularity::Offsets);
        // Lie about df: decoder walks past the real entries into padding
        // and must fail, not panic.
        let result = decode_postings(&bytes, 60, 100, &lens, ListCodec::Fixed);
        assert!(result.is_err());
    }

    #[test]
    fn index_lookup_and_postings() {
        let lens = vec![40u32; 10];
        let lists = vec![
            (
                7u64,
                PostingsList {
                    entries: vec![Posting {
                        record: 1,
                        offsets: vec![3],
                    }],
                },
            ),
            (
                9u64,
                PostingsList {
                    entries: vec![
                        Posting {
                            record: 0,
                            offsets: vec![0, 8],
                        },
                        Posting {
                            record: 9,
                            offsets: vec![31],
                        },
                    ],
                },
            ),
        ];
        let index = CompressedIndex::from_sorted_lists(
            IndexParams::new(4),
            ListCodec::Paper,
            lens,
            lists.clone().into_iter(),
        );
        assert_eq!(index.distinct_intervals(), 2);
        assert_eq!(index.df(7), 1);
        assert_eq!(index.df(9), 2);
        assert_eq!(index.df(8), 0);
        assert_eq!(index.postings(9).unwrap().unwrap(), lists[1].1);
        assert!(index.postings(12345).unwrap().is_none());
        let all = index.decode_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 7);
    }

    #[test]
    #[should_panic(expected = "ascending code order")]
    fn unsorted_lists_rejected() {
        let l = PostingsList {
            entries: vec![Posting {
                record: 0,
                offsets: vec![0],
            }],
        };
        let _ = CompressedIndex::from_sorted_lists(
            IndexParams::new(4),
            ListCodec::Paper,
            vec![8u32],
            vec![(9u64, l.clone()), (7u64, l)].into_iter(),
        );
    }

    #[test]
    fn records_granularity_round_trips_counts() {
        let list = sample_list();
        let lens = lens();
        for codec in [ListCodec::Paper, ListCodec::Gamma, ListCodec::VByte] {
            let bytes = encode_postings(&list, 100, &lens, codec, Granularity::Records);
            let counts = decode_counts(
                &bytes,
                list.df() as u32,
                100,
                &lens,
                codec,
                Granularity::Records,
            )
            .unwrap();
            let expect: Vec<(u32, u32)> = list
                .entries
                .iter()
                .map(|p| (p.record, p.offsets.len() as u32))
                .collect();
            assert_eq!(counts, expect, "{}", codec.name());
        }
    }

    #[test]
    fn counts_agree_across_granularities() {
        let list = sample_list();
        let lens = lens();
        let with_offsets =
            encode_postings(&list, 100, &lens, ListCodec::Paper, Granularity::Offsets);
        let records_only =
            encode_postings(&list, 100, &lens, ListCodec::Paper, Granularity::Records);
        // Records-only is strictly smaller.
        assert!(records_only.len() < with_offsets.len());
        let a = decode_counts(
            &with_offsets,
            list.df() as u32,
            100,
            &lens,
            ListCodec::Paper,
            Granularity::Offsets,
        )
        .unwrap();
        let b = decode_counts(
            &records_only,
            list.df() as u32,
            100,
            &lens,
            ListCodec::Paper,
            Granularity::Records,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn records_granularity_index_rejects_postings_access() {
        let lens = vec![40u32; 10];
        let lists = vec![(
            7u64,
            PostingsList {
                entries: vec![Posting {
                    record: 1,
                    offsets: vec![3, 9],
                }],
            },
        )];
        let index = CompressedIndex::from_sorted_lists(
            IndexParams::new(4).with_granularity(Granularity::Records),
            ListCodec::Paper,
            lens,
            lists.into_iter(),
        );
        assert!(matches!(index.postings(7), Err(IndexError::Unsupported(_))));
        assert_eq!(index.counts(7).unwrap().unwrap(), vec![(1u32, 2u32)]);
        assert!(index.counts(99).unwrap().is_none());
        // Stats still work (offsets counted from the counts decode).
        let stats = index.stats();
        assert_eq!(stats.total_offsets, 2);
    }

    #[test]
    fn block_index_exposes_max_counts_and_streams() {
        let lens = lens();
        let lists = vec![(3u64, sample_list())];
        let index = CompressedIndex::from_sorted_lists(
            IndexParams::new(4),
            ListCodec::Block,
            lens.clone(),
            lists.into_iter(),
        );
        // Largest per-record offset count in the sample list is 3.
        assert_eq!(index.max_counts(), Some(&[3u32][..]));
        assert_eq!(index.list_max_count(3), Some(3));
        assert_eq!(index.list_max_count(999), Some(0));
        assert_eq!(index.max_counts_or_compute().unwrap(), vec![3]);

        struct Collect(Vec<(u32, u32)>);
        impl PostingsVisitor for Collect {
            fn visit(&mut self, record: u32, value: u32) {
                self.0.push((record, value));
            }
        }
        let mut visitor = Collect(Vec::new());
        let stats = index.postings_stream(3, &mut visitor).unwrap().unwrap();
        assert_eq!(stats.df, 4);
        assert_eq!(stats.ids_decoded, 4);
        assert_eq!(stats.blocks_decoded, 1);
        assert_eq!(stats.blocks_skipped, 0);
        assert_eq!(stats.bytes_read, index.blob().len() as u64);
        let expect: Vec<(u32, u32)> = sample_list()
            .entries
            .iter()
            .flat_map(|p| p.offsets.iter().map(|&o| (p.record, o)))
            .collect();
        assert_eq!(visitor.0, expect);

        // A paper-codec build has no max-count hints but still streams.
        let paper = CompressedIndex::from_sorted_lists(
            IndexParams::new(4),
            ListCodec::Paper,
            lens,
            vec![(3u64, sample_list())].into_iter(),
        );
        assert_eq!(paper.list_max_count(3), None);
        let mut visitor = Collect(Vec::new());
        let stats = paper.postings_stream(3, &mut visitor).unwrap().unwrap();
        assert_eq!(stats.ids_decoded, 4);
        assert_eq!(stats.blocks_decoded, 0);
        assert_eq!(visitor.0, expect);
        assert_eq!(paper.max_counts_or_compute().unwrap(), vec![3]);
    }

    #[test]
    fn stats_account_sizes() {
        let lens = vec![100u32; 50];
        let lists = vec![(
            1u64,
            PostingsList {
                entries: (0..50u32)
                    .map(|r| Posting {
                        record: r,
                        offsets: vec![r, r + 20],
                    })
                    .collect(),
            },
        )];
        let index = CompressedIndex::from_sorted_lists(
            IndexParams::new(4),
            ListCodec::Paper,
            lens,
            lists.into_iter(),
        );
        let stats = index.stats();
        assert_eq!(stats.records, 50);
        assert_eq!(stats.total_bases, 5000);
        assert_eq!(stats.distinct_intervals, 1);
        assert_eq!(stats.postings_entries, 50);
        assert_eq!(stats.total_offsets, 100);
        assert_eq!(stats.blob_bytes, index.blob().len() as u64);
        assert!(stats.blob_bytes > 0);
    }
}
