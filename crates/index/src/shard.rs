//! The shard manifest: the durable description of a *sharded* database
//! root.
//!
//! A sharded root contains one `SHARDS` file plus N shard directories
//! (`shard-000/`, `shard-001/`, …), each of which is an ordinary plain
//! database directory (`index.nucidx` + `store.nucsto`). Shard `i` holds
//! the records whose *global* ids start at the sum of earlier shards'
//! `records` — the record-id base — so a scatter-gather merge over the
//! shards can reconstruct exactly the id space of a joint build.
//!
//! ## Format (`NUCSHD01`)
//!
//! ```text
//! magic "NUCSHD01" | body_len u32le | body_crc32 u32le | body
//! body: version vu64
//!       k vu64 | stride vu64 | granularity u8 | codec u8 | storage u8
//!       shard_count vu64
//!       per shard: records vu64 | index_bytes vu64 | store_bytes vu64
//! ```
//!
//! The framing mirrors the segment [`Manifest`](crate::Manifest)
//! (`NUCMAN01`): CRC-guarded body, exact end-of-file, written via
//! [`AtomicFile`]. The manifest is self-describing so the planner can
//! account for a shard whose files are unreadable (a *dead* shard) —
//! its record count, and therefore every other shard's id base, comes
//! from the manifest, not from opening the shard.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::compress::ListCodec;
use crate::durable::{crc32, read_exact_chunked, AtomicFile};
use crate::error::IndexError;
use crate::interval::Granularity;

/// File name of the shard manifest inside a sharded root.
pub const SHARD_MANIFEST_FILE: &str = "SHARDS";

const MAGIC: &[u8; 8] = b"NUCSHD01";
/// Fixed header size: magic + body_len + body_crc.
const HEADER_LEN: u64 = 16;
/// Cap on the declared body length (a shard manifest is tiny).
const MAX_BODY_LEN: u32 = 64 << 20;

/// Directory name of shard `ordinal` (`shard-<ordinal>`).
pub fn shard_dir_name(ordinal: usize) -> String {
    format!("shard-{ordinal:03}")
}

/// One shard of a sharded root, in record-id order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Number of records in the shard.
    pub records: u32,
    /// Size of the shard's index file in bytes (as written).
    pub index_bytes: u64,
    /// Size of the shard's store file in bytes (as written).
    pub store_bytes: u64,
}

/// The versioned, CRC-checksummed list of shards that constitutes a
/// sharded database root. See the module docs for format and layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Manifest version, bumped on every save.
    pub version: u64,
    /// Interval length all shards were built with.
    pub k: usize,
    /// Extraction stride all shards were built with.
    pub stride: usize,
    /// Postings granularity of all shards.
    pub granularity: Granularity,
    /// List codec of all shards.
    pub codec: ListCodec,
    /// Storage-mode tag of all shard stores (opaque to this crate).
    pub storage: u8,
    /// The shards, in record-id order: shard `i` holds the records whose
    /// global ids start at the sum of earlier shards' `records`.
    pub shards: Vec<ShardMeta>,
}

impl ShardManifest {
    /// An empty version-0 manifest for a new sharded root.
    pub fn new(
        k: usize,
        stride: usize,
        granularity: Granularity,
        codec: ListCodec,
        storage: u8,
    ) -> ShardManifest {
        ShardManifest {
            version: 0,
            k,
            stride,
            granularity,
            codec,
            storage,
            shards: Vec::new(),
        }
    }

    /// Total records across all shards.
    pub fn total_records(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.records)).sum()
    }

    /// Global record-id base of shard `ordinal` (sum of earlier shards'
    /// record counts).
    pub fn base_of(&self, ordinal: usize) -> u64 {
        self.shards[..ordinal]
            .iter()
            .map(|s| u64::from(s.records))
            .sum()
    }

    /// Serialize to the full on-disk file image (header + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.shards.len() * 12);
        put_vu64(&mut body, self.version);
        put_vu64(&mut body, self.k as u64);
        put_vu64(&mut body, self.stride as u64);
        body.push(self.granularity.tag());
        body.push(self.codec.tag());
        body.push(self.storage);
        put_vu64(&mut body, self.shards.len() as u64);
        for shard in &self.shards {
            put_vu64(&mut body, u64::from(shard.records));
            put_vu64(&mut body, shard.index_bytes);
            put_vu64(&mut body, shard.store_bytes);
        }
        let mut out = Vec::with_capacity(HEADER_LEN as usize + body.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Parse a full file image produced by [`ShardManifest::encode`],
    /// verifying magic, CRC, and exact end-of-file.
    pub fn decode(bytes: &[u8]) -> Result<ShardManifest, IndexError> {
        if bytes.len() < HEADER_LEN as usize {
            return Err(IndexError::bad_in(
                "shard manifest shorter than header",
                "shards",
            ));
        }
        if &bytes[..8] != MAGIC {
            return Err(IndexError::bad_at("bad shard manifest magic", "shards", 0));
        }
        let body_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if body_len > MAX_BODY_LEN {
            return Err(IndexError::bad_at(
                "shard manifest body length implausible",
                "shards",
                8,
            ));
        }
        let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let body = &bytes[HEADER_LEN as usize..];
        if body.len() != body_len as usize {
            return Err(IndexError::bad_at(
                "shard manifest body length does not match file size",
                "shards",
                8,
            ));
        }
        let actual_crc = crc32(body);
        if actual_crc != stored_crc {
            return Err(IndexError::checksum(
                "shards", HEADER_LEN, stored_crc, actual_crc,
            ));
        }

        let mut cur = body;
        let version = take_vu64(&mut cur)?;
        let k = take_vu64(&mut cur)?;
        let stride = take_vu64(&mut cur)?;
        if k == 0 || k > 32 {
            return Err(IndexError::bad_in(
                "shard manifest k out of range",
                "shards",
            ));
        }
        if stride == 0 {
            return Err(IndexError::bad_in(
                "shard manifest stride is zero",
                "shards",
            ));
        }
        let granularity = Granularity::from_tag(take_u8(&mut cur)?)?;
        let codec = ListCodec::from_tag(take_u8(&mut cur)?)?;
        let storage = take_u8(&mut cur)?;
        let count = take_vu64(&mut cur)?;
        // Each shard entry takes at least 3 bytes; bound count by the
        // remaining body so a corrupt count can't drive a huge allocation.
        if count > cur.len() as u64 {
            return Err(IndexError::bad_in(
                "shard manifest shard count implausible",
                "shards",
            ));
        }
        let mut shards: Vec<ShardMeta> = Vec::with_capacity(count as usize);
        let mut total: u64 = 0;
        for _ in 0..count {
            let records = take_vu64(&mut cur)?;
            let index_bytes = take_vu64(&mut cur)?;
            let store_bytes = take_vu64(&mut cur)?;
            if records > u64::from(u32::MAX) {
                return Err(IndexError::bad_in(
                    "shard record count overflows u32",
                    "shards",
                ));
            }
            total += records;
            if total > u64::from(u32::MAX) {
                return Err(IndexError::bad_in(
                    "total shard records overflow the u32 id space",
                    "shards",
                ));
            }
            shards.push(ShardMeta {
                records: records as u32,
                index_bytes,
                store_bytes,
            });
        }
        if !cur.is_empty() {
            return Err(IndexError::bad_in(
                "trailing bytes after shard manifest body",
                "shards",
            ));
        }
        Ok(ShardManifest {
            version,
            k: k as usize,
            stride: stride as usize,
            granularity,
            codec,
            storage,
            shards,
        })
    }

    /// Path of the shard manifest file inside `root`.
    pub fn path_in(root: &Path) -> PathBuf {
        root.join(SHARD_MANIFEST_FILE)
    }

    /// Durably write this manifest to `root/SHARDS` via write-to-temp +
    /// fsync + atomic rename.
    pub fn save(&self, root: &Path) -> Result<(), IndexError> {
        let mut file = AtomicFile::create(&ShardManifest::path_in(root))?;
        file.write_all(&self.encode())?;
        file.commit()?;
        Ok(())
    }

    /// Load and verify `root/SHARDS`.
    pub fn load(root: &Path) -> Result<ShardManifest, IndexError> {
        let mut file = File::open(ShardManifest::path_in(root))?;
        let len = file.metadata()?.len();
        if len < HEADER_LEN || len > HEADER_LEN + u64::from(MAX_BODY_LEN) {
            return Err(IndexError::bad_in(
                "shard manifest file size implausible",
                "shards",
            ));
        }
        let bytes = read_exact_chunked(&mut file, len as usize)?;
        let mut trailing = [0u8; 1];
        if file.read(&mut trailing)? != 0 {
            return Err(IndexError::bad_in(
                "trailing bytes after shard manifest body",
                "shards",
            ));
        }
        ShardManifest::decode(&bytes)
    }

    /// Does `root` look like a sharded root (has a shard manifest)?
    pub fn exists_in(root: &Path) -> bool {
        ShardManifest::path_in(root).is_file()
    }
}

fn put_vu64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn take_u8(cur: &mut &[u8]) -> Result<u8, IndexError> {
    let (&first, rest) = cur
        .split_first()
        .ok_or_else(|| IndexError::bad_in("shard manifest body truncated", "shards"))?;
    *cur = rest;
    Ok(first)
}

fn take_vu64(cur: &mut &[u8]) -> Result<u64, IndexError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = take_u8(cur)?;
        if shift == 63 && byte > 1 {
            return Err(IndexError::bad_in("varint overflows u64", "shards"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(IndexError::bad_in("varint too long", "shards"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        let mut m = ShardManifest::new(8, 1, Granularity::Offsets, ListCodec::Block, 1);
        m.version = 3;
        m.shards = vec![
            ShardMeta {
                records: 120,
                index_bytes: 4096,
                store_bytes: 9000,
            },
            ShardMeta {
                records: 80,
                index_bytes: 2048,
                store_bytes: 6000,
            },
            ShardMeta {
                records: 0,
                index_bytes: 64,
                store_bytes: 32,
            },
        ];
        m
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let back = ShardManifest::decode(&m.encode()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_records(), 200);
        assert_eq!(back.base_of(0), 0);
        assert_eq!(back.base_of(1), 120);
        assert_eq!(back.base_of(2), 200);
    }

    #[test]
    fn save_and_load() {
        let dir = std::env::temp_dir().join(format!("nucshd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save(&dir).unwrap();
        assert!(ShardManifest::exists_in(&dir));
        let back = ShardManifest::load(&dir).unwrap();
        assert_eq!(back, m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let bytes = sample().encode();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    ShardManifest::decode(&corrupt).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                ShardManifest::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(ShardManifest::decode(&bytes).is_err());
    }

    #[test]
    fn dir_names() {
        assert_eq!(shard_dir_name(0), "shard-000");
        assert_eq!(shard_dir_name(42), "shard-042");
    }

    #[test]
    fn overflowing_totals_rejected() {
        let mut m = sample();
        m.shards = vec![
            ShardMeta {
                records: u32::MAX,
                index_bytes: 0,
                store_bytes: 0,
            },
            ShardMeta {
                records: 1,
                index_bytes: 0,
                store_bytes: 0,
            },
        ];
        assert!(ShardManifest::decode(&m.encode()).is_err());
    }
}
