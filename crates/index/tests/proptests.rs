//! Property tests for the index layer: list codecs round-trip arbitrary
//! well-formed postings, corrupt inputs fail without panicking, and the
//! disk format round-trips arbitrary collections.

use nucdb_index::{
    decode_counts, decode_counts_with, decode_postings, decode_postings_with, encode_postings,
    load_index, write_index, Granularity, IndexBuilder, IndexParams, ListCodec, Posting,
    PostingsList,
};
use nucdb_seq::{Base, DnaSeq};
use proptest::prelude::*;

const CODECS: [ListCodec; 7] = [
    ListCodec::Paper,
    ListCodec::Gamma,
    ListCodec::Delta,
    ListCodec::VByte,
    ListCodec::Fixed,
    ListCodec::Interp,
    ListCodec::Block,
];

/// Strategy: a well-formed postings list over `num_records` records of
/// length `record_len`, plus the length table.
fn postings_list(num_records: u32, record_len: u32) -> impl Strategy<Value = PostingsList> {
    // Choose a subset of records; per record a sorted set of offsets.
    prop::collection::btree_set(0..num_records, 0..20).prop_flat_map(move |records| {
        let records: Vec<u32> = records.into_iter().collect();
        let per_record =
            prop::collection::btree_set(0..record_len, 1..8).prop_map(|s| s.into_iter().collect());
        prop::collection::vec(per_record, records.len()..=records.len()).prop_map(
            move |offsets_per: Vec<Vec<u32>>| PostingsList {
                entries: records
                    .iter()
                    .zip(offsets_per)
                    .map(|(&record, offsets)| Posting { record, offsets })
                    .collect(),
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_well_formed_list_round_trips(list in postings_list(500, 900)) {
        prop_assume!(list.is_well_formed());
        let lens = vec![900u32; 500];
        for codec in CODECS {
            let bytes = encode_postings(&list, 500, &lens, codec, Granularity::Offsets);
            let back =
                decode_postings(&bytes, list.df() as u32, 500, &lens, codec).unwrap();
            prop_assert_eq!(&back, &list, "{}", codec.name());
        }
    }

    #[test]
    fn streaming_decode_visits_exactly_the_materialized_list(list in postings_list(400, 800)) {
        prop_assume!(list.is_well_formed());
        let lens = vec![800u32; 400];
        let df = list.df() as u32;
        for codec in CODECS {
            // Offset granularity: the streamed (record, offset) sequence
            // must equal the flattened materialized decode, and the
            // streamed (record, count) sequence its per-record grouping.
            let bytes = encode_postings(&list, 400, &lens, codec, Granularity::Offsets);
            let materialized = decode_postings(&bytes, df, 400, &lens, codec).unwrap();
            let flat: Vec<(u32, u32)> = materialized
                .entries
                .iter()
                .flat_map(|p| p.offsets.iter().map(|&o| (p.record, o)))
                .collect();
            let mut streamed = Vec::new();
            decode_postings_with(&bytes, df, 400, &lens, codec, |r, o| streamed.push((r, o)))
                .unwrap();
            prop_assert_eq!(&streamed, &flat, "postings {}", codec.name());

            let counts = decode_counts(&bytes, df, 400, &lens, codec, Granularity::Offsets)
                .unwrap();
            let mut streamed_counts = Vec::new();
            decode_counts_with(&bytes, df, 400, &lens, codec, Granularity::Offsets, |r, c| {
                streamed_counts.push((r, c))
            })
            .unwrap();
            prop_assert_eq!(&streamed_counts, &counts, "counts/offsets {}", codec.name());

            // Record granularity: no offsets exist; only counts decode.
            let rbytes = encode_postings(&list, 400, &lens, codec, Granularity::Records);
            let rcounts = decode_counts(&rbytes, df, 400, &lens, codec, Granularity::Records)
                .unwrap();
            let mut rstreamed = Vec::new();
            decode_counts_with(&rbytes, df, 400, &lens, codec, Granularity::Records, |r, c| {
                rstreamed.push((r, c))
            })
            .unwrap();
            prop_assert_eq!(&rstreamed, &rcounts, "counts/records {}", codec.name());
        }
    }

    #[test]
    fn random_bytes_never_panic_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        df in 0u32..50,
    ) {
        let lens = vec![300u32; 100];
        for codec in CODECS {
            // Must return Ok or Err; panics fail the test harness.
            let _ = decode_postings(&bytes, df, 100, &lens, codec);
        }
    }

    #[test]
    fn truncated_real_lists_never_panic(
        list in postings_list(200, 500),
        cut_frac in 0.0f64..1.0,
    ) {
        prop_assume!(list.df() > 0);
        let lens = vec![500u32; 200];
        for codec in [ListCodec::Paper, ListCodec::Block] {
            let bytes = encode_postings(&list, 200, &lens, codec, Granularity::Offsets);
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let _ = decode_postings(&bytes[..cut], list.df() as u32, 200, &lens, codec);
        }
    }

    /// Block codec, multi-block scale: lists wide enough to span several
    /// 128-posting blocks round-trip at both granularities, and the
    /// streamed sequences equal the materialized ones.
    #[test]
    fn block_codec_round_trips_multi_block_lists(
        records in prop::collection::btree_set(0u32..2_000, 120..400),
        offsets_seed in prop::collection::vec(prop::collection::btree_set(0u32..300, 1..4), 400),
    ) {
        let list = PostingsList {
            entries: records
                .into_iter()
                .zip(offsets_seed)
                .map(|(record, offsets)| Posting {
                    record,
                    offsets: offsets.into_iter().collect(),
                })
                .collect(),
        };
        prop_assume!(list.is_well_formed());
        let lens = vec![300u32; 2_000];
        let df = list.df() as u32;
        for granularity in [Granularity::Offsets, Granularity::Records] {
            let bytes = encode_postings(&list, 2_000, &lens, ListCodec::Block, granularity);
            let counts =
                decode_counts(&bytes, df, 2_000, &lens, ListCodec::Block, granularity).unwrap();
            let expected: Vec<(u32, u32)> = list
                .entries
                .iter()
                .map(|p| (p.record, p.offsets.len() as u32))
                .collect();
            prop_assert_eq!(&counts, &expected, "{:?}", granularity);
        }
        let bytes = encode_postings(&list, 2_000, &lens, ListCodec::Block, Granularity::Offsets);
        let back = decode_postings(&bytes, df, 2_000, &lens, ListCodec::Block).unwrap();
        prop_assert_eq!(&back, &list);
    }

    /// Degenerate shapes the block layout must survive: df=1, a single
    /// partial block, and record ids at the very top of the u32 range.
    #[test]
    fn block_codec_handles_degenerate_lists(
        record in 0u32..u32::MAX,
        offsets in prop::collection::btree_set(0u32..1_000, 1..6),
    ) {
        let list = PostingsList {
            entries: vec![Posting {
                record,
                offsets: offsets.into_iter().collect(),
            }],
        };
        // Length table deliberately shorter than the record space:
        // records beyond it are unbounded (no per-record length cap).
        let lens = vec![1_000u32; 16];
        let bytes = encode_postings(&list, u32::MAX, &lens, ListCodec::Block, Granularity::Offsets);
        let back = decode_postings(&bytes, 1, u32::MAX, &lens, ListCodec::Block).unwrap();
        prop_assert_eq!(&back, &list);
    }

    #[test]
    fn disk_round_trip_arbitrary_records(
        records in prop::collection::vec(
            prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 0..150),
            0..20,
        ),
        k in 4usize..9,
    ) {
        let mut builder = IndexBuilder::new(IndexParams::new(k));
        for r in &records {
            let bases: Vec<Base> =
                DnaSeq::from_ascii(r).unwrap().representative_bases();
            builder.add_record(&bases);
        }
        let index = builder.finish();

        let path = std::env::temp_dir().join(format!(
            "nucdb_prop_disk_{}_{}.idx",
            std::process::id(),
            k
        ));
        write_index(&index, &path).unwrap();
        let loaded = load_index(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(loaded.num_records(), index.num_records());
        prop_assert_eq!(loaded.decode_all().unwrap(), index.decode_all().unwrap());
    }
}
