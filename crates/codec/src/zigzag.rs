//! Zigzag mapping between signed and unsigned integers.
//!
//! The frame-based coarse ranking in the core engine works with *diagonal*
//! values (query offset minus record offset), which are signed; zigzag
//! maps them onto the unsigned domain the codecs speak, keeping small
//! magnitudes small: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.

/// Map a signed value to unsigned, preserving magnitude order.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2), 4);
    }

    #[test]
    fn round_trip_extremes() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v, "value {v}");
        }
    }

    #[test]
    fn small_magnitudes_stay_small() {
        for v in -100i64..=100 {
            assert!(zigzag_encode(v) <= 200);
        }
    }
}
