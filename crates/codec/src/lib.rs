//! # nucdb-codec
//!
//! Bit-level integer coding, the substrate of the paper's index
//! compression. The EDBT'96 system holds its inverted index "to an
//! acceptable level" by storing postings as compressed integers: Golomb
//! codes for the gaps between sequence numbers (whose distribution the
//! Golomb parameter is fitted to), Elias gamma codes for in-record offset
//! counts, and Golomb/gamma codes for offset gaps. This crate implements
//! those codes — plus variable-byte and fixed-width codings used as
//! comparators in experiment **E5** — over a shared MSB-first bit stream.
//!
//! All codecs speak `u64` and implement [`IntCodec`], so postings layouts
//! and experiments can swap schemes freely.
//!
//! ```
//! use nucdb_codec::{BitReader, BitWriter, Gamma, IntCodec};
//!
//! let gaps = [1u64, 3, 2, 900, 1];
//! let mut w = BitWriter::new();
//! Gamma.encode_slice(&gaps, &mut w);
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! let decoded = Gamma.decode_vec(&mut r, gaps.len()).unwrap();
//! assert_eq!(decoded, gaps);
//! ```

#![warn(missing_docs)]

pub mod bitio;
pub mod codes;
pub mod error;
pub mod interp;
pub mod zigzag;

pub use bitio::{BitReader, BitWriter};
pub use codes::{Delta, FixedWidth, Gamma, Golomb, IntCodec, Rice, Unary, VByte};
pub use error::CodecError;
pub use interp::{interpolative_decode, interpolative_encode};
pub use zigzag::{zigzag_decode, zigzag_encode};
