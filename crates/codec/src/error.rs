//! Codec error type.

use std::fmt;

/// Errors produced while decoding a compressed bit stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended before the expected number of values was decoded.
    UnexpectedEnd,
    /// A decoded value does not fit the target width or violated an
    /// invariant of the code (e.g. a gamma length prefix of more than 64).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "bit stream ended unexpectedly"),
            CodecError::Malformed(what) => write!(f, "malformed code: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CodecError::UnexpectedEnd.to_string().contains("ended"));
        assert!(CodecError::Malformed("x").to_string().contains('x'));
    }
}
