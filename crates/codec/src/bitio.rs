//! MSB-first bit stream reader and writer.
//!
//! All integer codes in this crate are laid down on a single bit stream
//! with no per-value alignment — that is where the compression comes from,
//! and it matches the inverted-file layouts of the era (Bell, Moffat,
//! Witten). Bits are written most-significant-first within each byte so
//! that a unary scan can use leading-zero counts on whole bytes.

use crate::error::CodecError;

/// An append-only bit buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in `buf` (the final byte may be partial;
    /// its unused low-order bits are zero).
    bit_len: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// An empty writer with capacity for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> BitWriter {
        BitWriter {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            bit_len: 0,
        }
    }

    /// Number of bits written so far.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.bit_len
    }

    /// Number of bytes the stream occupies (final partial byte included).
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.bit_len.div_ceil(8)
    }

    /// Is the stream empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bit_len == 0
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        let offset = self.bit_len % 8;
        if offset == 0 {
            self.buf.push(0);
        }
        if bit {
            *self.buf.last_mut().unwrap() |= 0x80 >> offset;
        }
        self.bit_len += 1;
    }

    /// Append the low `count` bits of `value`, most significant first.
    /// `count` may be 0 (writes nothing) up to 64.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 64);
        if count == 0 {
            return;
        }
        // Mask to the requested width (count == 64 keeps everything).
        let value = if count == 64 {
            value
        } else {
            value & ((1u64 << count) - 1)
        };
        let mut remaining = count;
        while remaining > 0 {
            let offset = (self.bit_len % 8) as u32;
            if offset == 0 {
                self.buf.push(0);
            }
            let room = 8 - offset;
            let take = room.min(remaining);
            // The `take` most significant of the remaining bits.
            let chunk = (value >> (remaining - take)) as u8 & ((1u16 << take) - 1) as u8;
            *self.buf.last_mut().unwrap() |= chunk << (room - take);
            self.bit_len += take as usize;
            remaining -= take;
        }
    }

    /// Append `n` in unary: `n` zero bits, then a one bit.
    pub fn write_unary(&mut self, n: u64) {
        let mut zeros = n;
        // Fast path: whole zero bytes.
        while zeros >= 8 && self.bit_len % 8 == 0 {
            self.buf.push(0);
            self.bit_len += 8;
            zeros -= 8;
        }
        for _ in 0..zeros {
            self.write_bit(false);
        }
        self.write_bit(true);
    }

    /// The stream contents so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer and return the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bit stream reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader { data, pos: 0 }
    }

    /// Bits remaining until the end of the underlying bytes. Note the
    /// writer may have left up to 7 bits of zero padding in the final byte;
    /// callers track value counts rather than relying on exhaustion.
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        self.data.len() * 8 - self.pos
    }

    /// Current position in bits from the start.
    #[inline]
    pub fn position_bits(&self) -> usize {
        self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = *self
            .data
            .get(self.pos / 8)
            .ok_or(CodecError::UnexpectedEnd)?;
        let bit = byte & (0x80 >> (self.pos % 8)) != 0;
        self.pos += 1;
        Ok(bit)
    }

    /// Read `count` bits (0..=64) as an unsigned integer, MSB first.
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodecError> {
        debug_assert!(count <= 64);
        if count == 0 {
            return Ok(0);
        }
        if self.remaining_bits() < count as usize {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut value = 0u64;
        let mut remaining = count;
        while remaining > 0 {
            let byte = self.data[self.pos / 8];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            value = (value << take) | chunk as u64;
            self.pos += take as usize;
            remaining -= take;
        }
        Ok(value)
    }

    /// Read a unary value: the number of zero bits before the next one bit.
    pub fn read_unary(&mut self) -> Result<u64, CodecError> {
        let mut zeros = 0u64;
        loop {
            let byte_idx = self.pos / 8;
            let byte = *self.data.get(byte_idx).ok_or(CodecError::UnexpectedEnd)?;
            let offset = (self.pos % 8) as u32;
            // Bits of this byte still unread, left-aligned.
            let window = (byte << offset) as u32;
            if window == 0 {
                // All remaining bits in this byte are zero.
                zeros += (8 - offset) as u64;
                self.pos += (8 - offset) as usize;
                continue;
            }
            let lead = window.leading_zeros() - 24; // window is 8 significant bits
            zeros += lead as u64;
            self.pos += lead as usize + 1; // consume the terminating one
            return Ok(zeros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let pattern = [
            true, false, true, true, false, false, false, true, true, false,
        ];
        let mut w = BitWriter::new();
        for &bit in &pattern {
            w.write_bit(bit);
        }
        assert_eq!(w.len_bits(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &bit in &pattern {
            assert_eq!(r.read_bit().unwrap(), bit);
        }
    }

    #[test]
    fn write_bits_msb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0b0, 1);
        w.write_bits(0b111, 3);
        assert_eq!(w.as_bytes(), &[0b1011_0111]);
    }

    #[test]
    fn write_bits_masks_excess() {
        let mut w = BitWriter::new();
        // Only the low 3 bits of the value should appear.
        w.write_bits(0xffff_ffff_ffff_fff5, 3);
        assert_eq!(w.len_bits(), 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
    }

    #[test]
    fn bits_round_trip_various_widths() {
        let cases: &[(u64, u32)] = &[
            (0, 1),
            (1, 1),
            (5, 3),
            (255, 8),
            (256, 9),
            (0xdead_beef, 32),
            (u64::MAX, 64),
            (0x0123_4567_89ab_cdef, 64),
            (1, 64),
            (0, 17),
        ];
        let mut w = BitWriter::new();
        for &(value, width) in cases {
            w.write_bits(value, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(value, width) in cases {
            assert_eq!(r.read_bits(width).unwrap(), value, "width {width}");
        }
    }

    #[test]
    fn zero_width_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.len_bits(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }

    #[test]
    fn unary_round_trip() {
        let values = [0u64, 1, 2, 7, 8, 9, 15, 16, 63, 64, 100, 1000];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_unary(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_unary().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn unary_unaligned() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3); // misalign
        w.write_unary(20);
        w.write_unary(0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_unary().unwrap(), 20);
        assert_eq!(r.read_unary().unwrap(), 0);
    }

    #[test]
    fn read_past_end_fails() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0b1000_0000); // padding readable
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEnd));
        assert_eq!(r.read_bits(4), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn unary_past_end_fails() {
        // A stream of all zeros never terminates a unary code.
        let bytes = [0u8, 0, 0];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_unary(), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn position_and_remaining() {
        let mut w = BitWriter::new();
        w.write_bits(0, 13);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.position_bits(), 5);
        assert_eq!(r.remaining_bits(), 11);
    }

    #[test]
    fn len_bytes_rounds_up() {
        let mut w = BitWriter::new();
        assert_eq!(w.len_bytes(), 0);
        w.write_bit(true);
        assert_eq!(w.len_bytes(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.len_bytes(), 1);
        w.write_bit(false);
        assert_eq!(w.len_bytes(), 2);
    }
}
