//! The integer codes: unary, Elias gamma and delta, Golomb and Rice,
//! variable-byte, and fixed-width binary.
//!
//! All codecs encode non-negative `u64` values (the Elias codes, which
//! classically start at 1, are offset by one internally so the caller-facing
//! domain is uniform). Each implements [`IntCodec`], so the postings layout
//! in `nucdb-index` and the codec-comparison experiment **E5** can swap
//! schemes without code changes.
//!
//! Which code suits which distribution (following Witten, Moffat & Bell):
//!
//! * **Unary** — only for tiny values; length is `value + 1` bits.
//! * **Gamma** — good for small values with a decaying distribution
//!   (in-record offset counts: almost always 1 or 2).
//! * **Delta** — better than gamma once values grow beyond ~32.
//! * **Golomb** — the workhorse for gaps between hits of a term with known
//!   density; with the fitted parameter it is near-optimal for geometric
//!   gap distributions, which is why the paper uses it for sequence-number
//!   gaps.
//! * **Rice** — Golomb restricted to power-of-two parameters: marginally
//!   worse compression, faster decode.
//! * **VByte** — byte-aligned, larger but very fast; included as the
//!   pragmatic comparator.
//! * **FixedWidth** — the uncompressed baseline.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// A uniform interface over integer codes on a shared bit stream.
pub trait IntCodec {
    /// Short scheme name for reports (e.g. `"golomb(b=7)"` prints the
    /// parameter separately; this is just `"golomb"`).
    fn name(&self) -> &'static str;

    /// Append one value to the stream.
    fn encode(&self, value: u64, w: &mut BitWriter);

    /// Decode one value from the stream.
    fn decode(&self, r: &mut BitReader) -> Result<u64, CodecError>;

    /// Append every value in `values`.
    fn encode_slice(&self, values: &[u64], w: &mut BitWriter) {
        for &v in values {
            self.encode(v, w);
        }
    }

    /// Decode exactly `count` values.
    fn decode_vec(&self, r: &mut BitReader, count: usize) -> Result<Vec<u64>, CodecError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.decode(r)?);
        }
        Ok(out)
    }
}

/// Unary code: `n` zero bits then a one bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unary;

impl IntCodec for Unary {
    fn name(&self) -> &'static str {
        "unary"
    }

    fn encode(&self, value: u64, w: &mut BitWriter) {
        w.write_unary(value);
    }

    fn decode(&self, r: &mut BitReader) -> Result<u64, CodecError> {
        r.read_unary()
    }
}

/// Floor of log2 for a positive value.
#[inline]
fn floor_log2(v: u64) -> u32 {
    debug_assert!(v > 0);
    63 - v.leading_zeros()
}

/// Encode a *positive* value with Elias gamma: unary length prefix, then
/// the value's bits below its leading one.
#[inline]
fn gamma_encode_pos(v: u64, w: &mut BitWriter) {
    let n = floor_log2(v);
    w.write_unary(n as u64);
    w.write_bits(v, n);
}

/// Decode a positive Elias-gamma value.
#[inline]
fn gamma_decode_pos(r: &mut BitReader) -> Result<u64, CodecError> {
    let n = r.read_unary()?;
    if n > 63 {
        return Err(CodecError::Malformed("gamma length prefix exceeds 63"));
    }
    let low = r.read_bits(n as u32)?;
    Ok((1u64 << n) | low)
}

/// Elias gamma code (caller domain `0..`, internally offset by one).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gamma;

impl IntCodec for Gamma {
    fn name(&self) -> &'static str {
        "gamma"
    }

    fn encode(&self, value: u64, w: &mut BitWriter) {
        assert!(value < u64::MAX, "gamma domain is 0..u64::MAX-1");
        gamma_encode_pos(value + 1, w);
    }

    fn decode(&self, r: &mut BitReader) -> Result<u64, CodecError> {
        Ok(gamma_decode_pos(r)? - 1)
    }
}

/// Elias delta code: the gamma length prefix is itself gamma-coded, which
/// wins once values are large.
#[derive(Debug, Clone, Copy, Default)]
pub struct Delta;

impl IntCodec for Delta {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn encode(&self, value: u64, w: &mut BitWriter) {
        assert!(value < u64::MAX, "delta domain is 0..u64::MAX-1");
        let v = value + 1;
        let n = floor_log2(v);
        gamma_encode_pos(n as u64 + 1, w);
        w.write_bits(v, n);
    }

    fn decode(&self, r: &mut BitReader) -> Result<u64, CodecError> {
        let n = gamma_decode_pos(r)? - 1;
        if n > 63 {
            return Err(CodecError::Malformed("delta length prefix exceeds 63"));
        }
        let low = r.read_bits(n as u32)?;
        Ok(((1u64 << n) | low) - 1)
    }
}

/// Golomb code with parameter `b`: quotient in unary, remainder in
/// truncated binary. Near-optimal for geometrically distributed values
/// when `b` is fitted to the distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Golomb {
    b: u64,
    /// ceil(log2 b)
    c: u32,
    /// 2^c - b: remainders below this use c-1 bits.
    cutoff: u64,
}

impl Golomb {
    /// Create with an explicit parameter (`b >= 1`).
    pub fn new(b: u64) -> Golomb {
        assert!(b >= 1, "Golomb parameter must be positive");
        let c = if b == 1 {
            0
        } else {
            64 - (b - 1).leading_zeros()
        };
        let cutoff = (1u64 << c) - b;
        Golomb { b, c, cutoff }
    }

    /// The parameter.
    pub fn b(&self) -> u64 {
        self.b
    }

    /// Fit the parameter to a Bernoulli gap model: `occurrences` hits
    /// spread over a `universe` of slots (Witten–Moffat–Bell formula
    /// `b = ceil(log(2-p) / -log(1-p))` with `p = occurrences/universe`).
    ///
    /// This is exactly how the index layer chooses per-list parameters for
    /// sequence-number gaps: `universe` = number of records, `occurrences`
    /// = list length.
    pub fn fit(universe: u64, occurrences: u64) -> Golomb {
        if occurrences == 0 || universe == 0 || occurrences >= universe {
            return Golomb::new(1);
        }
        let p = occurrences as f64 / universe as f64;
        let b = ((2.0 - p).ln() / -(1.0 - p).ln()).ceil();
        Golomb::new(if b.is_finite() && b >= 1.0 {
            b as u64
        } else {
            1
        })
    }

    /// Fit to a mean gap value (the classic `b ≈ 0.69 * mean`).
    pub fn fit_mean(mean_gap: f64) -> Golomb {
        if !mean_gap.is_finite() || mean_gap <= 1.0 {
            return Golomb::new(1);
        }
        Golomb::new(((2f64.ln()) * mean_gap).ceil().max(1.0) as u64)
    }
}

impl IntCodec for Golomb {
    fn name(&self) -> &'static str {
        "golomb"
    }

    fn encode(&self, value: u64, w: &mut BitWriter) {
        let q = value / self.b;
        let r = value % self.b;
        w.write_unary(q);
        if self.b == 1 {
            return;
        }
        if r < self.cutoff {
            w.write_bits(r, self.c - 1);
        } else {
            w.write_bits(r + self.cutoff, self.c);
        }
    }

    fn decode(&self, reader: &mut BitReader) -> Result<u64, CodecError> {
        let q = reader.read_unary()?;
        let r = if self.b == 1 {
            0
        } else {
            let head = reader.read_bits(self.c - 1)?;
            if head < self.cutoff {
                head
            } else {
                let tail = reader.read_bits(1)?;
                ((head << 1) | tail) - self.cutoff
            }
        };
        q.checked_mul(self.b)
            .and_then(|qb| qb.checked_add(r))
            .ok_or(CodecError::Malformed("golomb value overflows u64"))
    }
}

/// Rice code: Golomb with `b = 2^k`. The remainder is a plain `k`-bit
/// field, so decode needs no comparison against a cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rice {
    k: u32,
}

impl Rice {
    /// Create with remainder width `k` (0..=32).
    pub fn new(k: u32) -> Rice {
        assert!(k <= 32, "Rice parameter out of range");
        Rice { k }
    }

    /// The remainder width.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Fit to a mean value: the power of two nearest `0.69 * mean`.
    pub fn fit_mean(mean: f64) -> Rice {
        if !mean.is_finite() || mean <= 1.5 {
            return Rice::new(0);
        }
        let target = 2f64.ln() * mean;
        Rice::new(target.log2().round().clamp(0.0, 32.0) as u32)
    }
}

impl IntCodec for Rice {
    fn name(&self) -> &'static str {
        "rice"
    }

    fn encode(&self, value: u64, w: &mut BitWriter) {
        w.write_unary(value >> self.k);
        w.write_bits(value, self.k);
    }

    fn decode(&self, r: &mut BitReader) -> Result<u64, CodecError> {
        let q = r.read_unary()?;
        if self.k > 0 && q >= (1u64 << (64 - self.k)) {
            return Err(CodecError::Malformed("rice quotient overflows u64"));
        }
        let rem = r.read_bits(self.k)?;
        Ok((q << self.k) | rem)
    }
}

/// Variable-byte code: 7 data bits per byte, high bit set on continuation
/// bytes. Byte-aligned only if the stream position is; within this crate
/// the groups are written to the shared bit stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct VByte;

impl IntCodec for VByte {
    fn name(&self) -> &'static str {
        "vbyte"
    }

    fn encode(&self, mut value: u64, w: &mut BitWriter) {
        while value >= 0x80 {
            w.write_bits((value & 0x7f) | 0x80, 8);
            value >>= 7;
        }
        w.write_bits(value, 8);
    }

    fn decode(&self, r: &mut BitReader) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for group in 0..10u32 {
            let byte = r.read_bits(8)?;
            value |= (byte & 0x7f) << (7 * group);
            if byte & 0x80 == 0 {
                if group == 9 && byte > 1 {
                    return Err(CodecError::Malformed("vbyte value overflows u64"));
                }
                return Ok(value);
            }
        }
        Err(CodecError::Malformed("vbyte run exceeds 10 bytes"))
    }
}

/// Fixed-width binary: every value in exactly `bits` bits. The
/// uncompressed comparator in E5. Values must fit; encoding a value that
/// does not fit panics (it indicates a mis-sized layout, not bad data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedWidth {
    bits: u32,
}

impl FixedWidth {
    /// Create with the given width (1..=64).
    pub fn new(bits: u32) -> FixedWidth {
        assert!((1..=64).contains(&bits), "width out of range");
        FixedWidth { bits }
    }

    /// The width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The smallest width that can hold `max_value`.
    pub fn for_max(max_value: u64) -> FixedWidth {
        FixedWidth::new(if max_value == 0 {
            1
        } else {
            floor_log2(max_value) + 1
        })
    }
}

impl IntCodec for FixedWidth {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn encode(&self, value: u64, w: &mut BitWriter) {
        assert!(
            self.bits == 64 || value < (1u64 << self.bits),
            "value {value} does not fit in {} bits",
            self.bits
        );
        w.write_bits(value, self.bits);
    }

    fn decode(&self, r: &mut BitReader) -> Result<u64, CodecError> {
        r.read_bits(self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(codec: &dyn IntCodec, values: &[u64]) {
        let mut w = BitWriter::new();
        codec.encode_slice(values, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = codec.decode_vec(&mut r, values.len()).unwrap();
        assert_eq!(decoded, values, "{} round trip", codec.name());
    }

    const SMALL: &[u64] = &[
        0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 16, 17, 31, 100, 127, 128, 1000,
    ];

    #[test]
    fn unary_round_trip() {
        round_trip(&Unary, &[0, 1, 2, 3, 10, 40]);
    }

    #[test]
    fn gamma_round_trip() {
        round_trip(&Gamma, SMALL);
        round_trip(&Gamma, &[u32::MAX as u64, 1 << 40, (1 << 62) + 12345]);
    }

    #[test]
    fn gamma_known_lengths() {
        // gamma(v) for caller value n encodes v = n+1 and needs
        // 2*floor(log2 v) + 1 bits.
        for (n, expect_bits) in [(0u64, 1usize), (1, 3), (2, 3), (3, 5), (6, 5), (7, 7)] {
            let mut w = BitWriter::new();
            Gamma.encode(n, &mut w);
            assert_eq!(w.len_bits(), expect_bits, "value {n}");
        }
    }

    #[test]
    fn delta_round_trip() {
        round_trip(&Delta, SMALL);
        round_trip(
            &Delta,
            &[u32::MAX as u64, 1 << 40, (1 << 62) + 999, u64::MAX - 1],
        );
    }

    #[test]
    fn delta_beats_gamma_for_large_values() {
        let mut gw = BitWriter::new();
        let mut dw = BitWriter::new();
        for v in [1u64 << 20, 1 << 30, 1 << 40] {
            Gamma.encode(v, &mut gw);
            Delta.encode(v, &mut dw);
        }
        assert!(dw.len_bits() < gw.len_bits());
    }

    #[test]
    fn golomb_round_trip_various_b() {
        for b in [1u64, 2, 3, 4, 5, 7, 8, 10, 64, 100, 1000] {
            round_trip(&Golomb::new(b), SMALL);
        }
    }

    #[test]
    fn golomb_b1_is_unary() {
        let mut gw = BitWriter::new();
        let mut uw = BitWriter::new();
        for v in [0u64, 3, 9] {
            Golomb::new(1).encode(v, &mut gw);
            Unary.encode(v, &mut uw);
        }
        assert_eq!(gw.into_bytes(), uw.into_bytes());
    }

    #[test]
    fn golomb_truncated_binary_lengths() {
        // b=5: c=3, cutoff=3; remainders 0..3 take 2 bits, 3..5 take 3.
        let g = Golomb::new(5);
        for (v, expect_bits) in [(0u64, 3usize), (2, 3), (3, 4), (4, 4), (5, 4)] {
            // 1 unary bit for q=0 (values < 5), plus remainder bits.
            let mut w = BitWriter::new();
            g.encode(v, &mut w);
            assert_eq!(w.len_bits(), expect_bits, "value {v}");
        }
    }

    #[test]
    fn golomb_fit_is_sane() {
        // Density 1/100 → mean gap 100 → b near 69.
        let g = Golomb::fit(100_000, 1_000);
        assert!((60..=80).contains(&g.b()), "b = {}", g.b());
        // Degenerate fits fall back to b=1.
        assert_eq!(Golomb::fit(0, 0).b(), 1);
        assert_eq!(Golomb::fit(10, 10).b(), 1);
        assert_eq!(Golomb::fit(10, 20).b(), 1);
    }

    #[test]
    fn golomb_fit_mean() {
        assert_eq!(Golomb::fit_mean(1.0).b(), 1);
        assert_eq!(Golomb::fit_mean(f64::NAN).b(), 1);
        let g = Golomb::fit_mean(100.0);
        assert!((65..=75).contains(&g.b()), "b = {}", g.b());
    }

    #[test]
    fn golomb_compresses_geometric_gaps_well() {
        // Geometric-ish gaps with mean ~50: fitted Golomb should beat gamma.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let gaps: Vec<u64> = (0..10_000)
            .map(|_| (-(rng.random::<f64>().ln()) * 50.0) as u64)
            .collect();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let golomb = Golomb::fit_mean(mean);

        let mut gw = BitWriter::new();
        golomb.encode_slice(&gaps, &mut gw);
        let mut ew = BitWriter::new();
        Gamma.encode_slice(&gaps, &mut ew);
        assert!(
            gw.len_bits() < ew.len_bits(),
            "golomb {} bits vs gamma {} bits",
            gw.len_bits(),
            ew.len_bits()
        );
        let mut r = BitReader::new(gw.as_bytes());
        assert_eq!(golomb.decode_vec(&mut r, gaps.len()).unwrap(), gaps);
    }

    #[test]
    fn rice_round_trip() {
        for k in [0u32, 1, 3, 7, 16] {
            round_trip(&Rice::new(k), SMALL);
        }
    }

    #[test]
    fn rice_equals_golomb_at_powers_of_two() {
        for (k, b) in [(0u32, 1u64), (1, 2), (3, 8), (5, 32)] {
            let mut rw = BitWriter::new();
            let mut gw = BitWriter::new();
            for v in SMALL {
                Rice::new(k).encode(*v, &mut rw);
                Golomb::new(b).encode(*v, &mut gw);
            }
            assert_eq!(rw.into_bytes(), gw.into_bytes(), "k={k}");
        }
    }

    #[test]
    fn rice_fit_mean() {
        assert_eq!(Rice::fit_mean(1.0).k(), 0);
        let r = Rice::fit_mean(100.0);
        assert!((5..=7).contains(&r.k()), "k = {}", r.k());
    }

    #[test]
    fn vbyte_round_trip() {
        round_trip(&VByte, SMALL);
        round_trip(&VByte, &[u64::MAX, u64::MAX - 1, 1 << 63]);
    }

    #[test]
    fn vbyte_lengths() {
        for (v, expect_bytes) in [(0u64, 1usize), (127, 1), (128, 2), (16_383, 2), (16_384, 3)] {
            let mut w = BitWriter::new();
            VByte.encode(v, &mut w);
            assert_eq!(w.len_bytes(), expect_bytes, "value {v}");
        }
    }

    #[test]
    fn fixed_width_round_trip() {
        round_trip(&FixedWidth::new(17), &[0, 1, 100, (1 << 17) - 1]);
        round_trip(&FixedWidth::new(64), &[u64::MAX, 0]);
    }

    #[test]
    fn fixed_width_for_max() {
        assert_eq!(FixedWidth::for_max(0).bits(), 1);
        assert_eq!(FixedWidth::for_max(1).bits(), 1);
        assert_eq!(FixedWidth::for_max(2).bits(), 2);
        assert_eq!(FixedWidth::for_max(255).bits(), 8);
        assert_eq!(FixedWidth::for_max(256).bits(), 9);
        assert_eq!(FixedWidth::for_max(u64::MAX).bits(), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn fixed_width_rejects_oversize() {
        let mut w = BitWriter::new();
        FixedWidth::new(4).encode(16, &mut w);
    }

    #[test]
    fn truncated_streams_error_not_panic() {
        let mut w = BitWriter::new();
        Gamma.encode(1_000_000, &mut w);
        Delta.encode(1_000_000, &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = BitReader::new(&bytes[..cut]);
            // Either value may fail; neither may panic.
            let _ = Gamma.decode(&mut r).and_then(|_| Delta.decode(&mut r));
        }
    }

    #[test]
    fn mixed_codecs_share_one_stream() {
        let mut w = BitWriter::new();
        Gamma.encode(9, &mut w);
        Golomb::new(7).encode(22, &mut w);
        VByte.encode(300, &mut w);
        Delta.encode(5, &mut w);
        FixedWidth::new(12).encode(4000, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(Gamma.decode(&mut r).unwrap(), 9);
        assert_eq!(Golomb::new(7).decode(&mut r).unwrap(), 22);
        assert_eq!(VByte.decode(&mut r).unwrap(), 300);
        assert_eq!(Delta.decode(&mut r).unwrap(), 5);
        assert_eq!(FixedWidth::new(12).decode(&mut r).unwrap(), 4000);
    }
}
