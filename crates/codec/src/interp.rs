//! Binary interpolative coding (Moffat & Stuiver).
//!
//! The strongest classic compressor for sorted integer lists: the middle
//! element is coded first with a minimal binary code over the range its
//! neighbours leave possible, then each half recursively. Clustered lists
//! (exactly what postings with locality look like) approach the entropy
//! bound — dense runs can cost *zero* bits per element when the range
//! pins the values completely.
//!
//! Unlike the per-value codes behind [`crate::IntCodec`], interpolative
//! coding is a whole-list transform: encode and decode must agree on the
//! element count and the enclosing range.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Minimal binary code for `x` in `[0, range)`: the first
/// `2^b − range` values use `b−1` bits, the rest `b` (where
/// `b = ceil(log2 range)`).
fn write_minimal_binary(x: u64, range: u64, w: &mut BitWriter) {
    debug_assert!(x < range);
    if range <= 1 {
        return; // zero bits: the value is determined
    }
    let b = 64 - (range - 1).leading_zeros();
    let threshold = (1u64 << b) - range;
    if x < threshold {
        w.write_bits(x, b - 1);
    } else {
        w.write_bits(x + threshold, b);
    }
}

fn read_minimal_binary(range: u64, r: &mut BitReader) -> Result<u64, CodecError> {
    if range <= 1 {
        return Ok(0);
    }
    let b = 64 - (range - 1).leading_zeros();
    let threshold = (1u64 << b) - range;
    let head = r.read_bits(b - 1)?;
    if head < threshold {
        Ok(head)
    } else {
        let tail = r.read_bits(1)?;
        Ok(((head << 1) | tail) - threshold)
    }
}

/// Encode a strictly increasing list of values, all within `[lo, hi]`
/// (inclusive). The decoder must be given the same `count`, `lo`, `hi`.
///
/// # Panics
///
/// Panics (in debug builds) if the list is not strictly increasing or a
/// value falls outside `[lo, hi]`; the encoding would be unreconstructable.
pub fn interpolative_encode(values: &[u64], lo: u64, hi: u64, w: &mut BitWriter) {
    debug_assert!(
        values.windows(2).all(|p| p[0] < p[1]),
        "values must strictly increase"
    );
    debug_assert!(values.iter().all(|&v| (lo..=hi).contains(&v)));
    if values.is_empty() {
        return;
    }
    let mid = values.len() / 2;
    let v = values[mid];
    // With `mid` values below v and `len-1-mid` above, v is confined to
    // [lo + mid, hi - (len - 1 - mid)].
    let v_lo = lo + mid as u64;
    let v_hi = hi - (values.len() - 1 - mid) as u64;
    write_minimal_binary(v - v_lo, v_hi - v_lo + 1, w);
    interpolative_encode(&values[..mid], lo, v.saturating_sub(1), w);
    interpolative_encode(&values[mid + 1..], v + 1, hi, w);
}

/// Decode `count` values encoded by [`interpolative_encode`] with the
/// same `lo`, `hi`.
pub fn interpolative_decode(
    count: usize,
    lo: u64,
    hi: u64,
    r: &mut BitReader,
) -> Result<Vec<u64>, CodecError> {
    let mut out = vec![0u64; count];
    decode_into(&mut out, lo, hi, r)?;
    Ok(out)
}

fn decode_into(slot: &mut [u64], lo: u64, hi: u64, r: &mut BitReader) -> Result<(), CodecError> {
    if slot.is_empty() {
        return Ok(());
    }
    if hi < lo {
        return Err(CodecError::Malformed("interpolative range inverted"));
    }
    let mid = slot.len() / 2;
    let v_lo = lo
        .checked_add(mid as u64)
        .ok_or(CodecError::Malformed("interpolative bound overflow"))?;
    let v_hi = hi
        .checked_sub((slot.len() - 1 - mid) as u64)
        .ok_or(CodecError::Malformed(
            "interpolative range too small for count",
        ))?;
    if v_hi < v_lo {
        return Err(CodecError::Malformed(
            "interpolative range too small for count",
        ));
    }
    let v = v_lo + read_minimal_binary(v_hi - v_lo + 1, r)?;
    slot[mid] = v;
    // Split the borrow to recurse on both halves.
    let (left, rest) = slot.split_at_mut(mid);
    let right = &mut rest[1..];
    decode_into(left, lo, v.saturating_sub(1), r)?;
    decode_into(right, v + 1, hi, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u64], lo: u64, hi: u64) -> usize {
        let mut w = BitWriter::new();
        interpolative_encode(values, lo, hi, &mut w);
        let bits = w.len_bits();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let decoded = interpolative_decode(values.len(), lo, hi, &mut r).unwrap();
        assert_eq!(decoded, values);
        bits
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(round_trip(&[], 0, 100), 0);
        round_trip(&[42], 0, 100);
        // A single value in a singleton range costs zero bits.
        assert_eq!(round_trip(&[7], 7, 7), 0);
    }

    #[test]
    fn dense_runs_cost_nothing() {
        // The full range [0, n-1]: every value is pinned, zero bits.
        let values: Vec<u64> = (0..64).collect();
        assert_eq!(round_trip(&values, 0, 63), 0);
    }

    #[test]
    fn scattered_values() {
        round_trip(&[3, 9, 11, 40, 41, 42, 900], 0, 1000);
        round_trip(&[0, 1000], 0, 1000);
        round_trip(&[0], 0, 0);
    }

    #[test]
    fn half_dense_lists_beat_gamma_gaps() {
        use crate::codes::{Gamma, IntCodec};
        // Every second slot of the universe occupied: gap coding pays ~3
        // bits per element (gamma of gap−1 = 1); interpolative's range
        // constraints squeeze each element towards one bit.
        let values: Vec<u64> = (0..2000u64).map(|i| i * 2).collect();
        let interp_bits = round_trip(&values, 0, 3_999);

        let mut w = BitWriter::new();
        let mut prev = -1i64;
        for &v in &values {
            Gamma.encode((v as i64 - prev - 1) as u64, &mut w);
            prev = v as i64;
        }
        let gamma_bits = w.len_bits();
        assert!(
            interp_bits < gamma_bits,
            "interp {interp_bits} >= gamma {gamma_bits}"
        );
    }

    #[test]
    fn truncated_stream_errors() {
        let values: Vec<u64> = (0..50).map(|i| i * 37 + 5).collect();
        let mut w = BitWriter::new();
        interpolative_encode(&values, 0, 5000, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..bytes.len() / 4]);
        assert!(interpolative_decode(values.len(), 0, 5000, &mut r).is_err());
    }

    #[test]
    fn impossible_count_rejected() {
        // 5 values cannot fit in a 3-wide range.
        let mut r = BitReader::new(&[0u8; 8]);
        assert!(interpolative_decode(5, 10, 12, &mut r).is_err());
    }

    #[test]
    fn minimal_binary_round_trip() {
        for range in [1u64, 2, 3, 5, 8, 100, 1 << 20] {
            for x in [0, range / 3, range / 2, range - 1] {
                let mut w = BitWriter::new();
                write_minimal_binary(x, range, &mut w);
                let bytes = w.into_bytes();
                let mut r = BitReader::new(&bytes);
                assert_eq!(
                    read_minimal_binary(range, &mut r).unwrap(),
                    x,
                    "x={x} range={range}"
                );
            }
        }
    }
}
