//! Property tests: every codec round-trips arbitrary value streams, and
//! the bit I/O layer round-trips arbitrary (value, width) sequences.

use nucdb_codec::{
    zigzag_decode, zigzag_encode, BitReader, BitWriter, Delta, FixedWidth, Gamma, Golomb, IntCodec,
    Rice, VByte,
};
use proptest::prelude::*;

fn check_round_trip(codec: &dyn IntCodec, values: &[u64]) {
    let mut w = BitWriter::new();
    codec.encode_slice(values, &mut w);
    let bytes = w.into_bytes();
    let mut r = BitReader::new(&bytes);
    let decoded = codec.decode_vec(&mut r, values.len()).unwrap();
    assert_eq!(decoded, values);
}

proptest! {
    #[test]
    fn gamma_round_trips(values in prop::collection::vec(0u64..u64::MAX - 1, 0..200)) {
        check_round_trip(&Gamma, &values);
    }

    #[test]
    fn delta_round_trips(values in prop::collection::vec(0u64..u64::MAX - 1, 0..200)) {
        check_round_trip(&Delta, &values);
    }

    // Golomb/Rice value ranges are bounded: with a tiny parameter the
    // quotient is stored in unary, so a huge value would legitimately
    // emit millions of bits — correct, but pointless to property-test.
    #[test]
    fn golomb_round_trips(
        b in 1u64..10_000,
        values in prop::collection::vec(0u64..200_000, 0..200),
    ) {
        check_round_trip(&Golomb::new(b), &values);
    }

    #[test]
    fn rice_round_trips(
        k in 0u32..=32,
        values in prop::collection::vec(0u64..200_000, 0..200),
    ) {
        check_round_trip(&Rice::new(k), &values);
    }

    #[test]
    fn golomb_large_values_with_fitted_parameter(
        mean in 1_000.0f64..100_000.0,
        values in prop::collection::vec(0u64..2_000_000, 0..50),
    ) {
        // Larger values are fine when the parameter matches their scale.
        check_round_trip(&Golomb::fit_mean(mean), &values);
    }

    #[test]
    fn vbyte_round_trips(values in prop::collection::vec(any::<u64>(), 0..200)) {
        check_round_trip(&VByte, &values);
    }

    #[test]
    fn fixed_width_round_trips(
        bits in 1u32..=63,
        raw in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mask = (1u64 << bits) - 1;
        let values: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        check_round_trip(&FixedWidth::new(bits), &values);
    }

    #[test]
    fn bitio_round_trips_mixed_widths(
        pairs in prop::collection::vec((any::<u64>(), 0u32..=64), 0..200),
    ) {
        let mut w = BitWriter::new();
        for &(value, width) in &pairs {
            w.write_bits(value, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(value, width) in &pairs {
            let expect = if width == 64 { value } else { value & ((1u64 << width) - 1) };
            prop_assert_eq!(r.read_bits(width).unwrap(), expect);
        }
    }

    #[test]
    fn unary_interleaves_with_bits(
        items in prop::collection::vec((0u64..500, any::<u64>(), 0u32..=16), 0..100),
    ) {
        let mut w = BitWriter::new();
        for &(n, value, width) in &items {
            w.write_unary(n);
            w.write_bits(value, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(n, value, width) in &items {
            prop_assert_eq!(r.read_unary().unwrap(), n);
            let expect = if width == 0 { 0 } else { value & ((1u64 << width) - 1) };
            prop_assert_eq!(r.read_bits(width).unwrap(), expect);
        }
    }

    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn truncated_decode_never_panics(
        values in prop::collection::vec(0u64..1_000_000, 1..50),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut w = BitWriter::new();
        Gamma.encode_slice(&values, &mut w);
        let bytes = w.into_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut r = BitReader::new(&bytes[..cut]);
        // Must terminate with Ok or Err, never panic or loop forever.
        let _ = Gamma.decode_vec(&mut r, values.len());
    }

    #[test]
    fn golomb_fit_never_panics(universe in 0u64..1_000_000, occ in 0u64..1_000_000) {
        let g = Golomb::fit(universe, occ);
        prop_assert!(g.b() >= 1);
    }
}
