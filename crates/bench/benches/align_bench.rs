//! Criterion micro-benchmarks for the alignment substrate: full vs banded
//! Smith–Waterman cell throughput and the exhaustive-scanner per-record
//! cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nucdb_align::{
    banded_sw_score, blast_score, fasta_score, sw_align, sw_score, BlastParams, FastaParams,
    ScoringScheme, WordTable,
};
use nucdb_seq::random::random_seq;
use nucdb_seq::Base;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seqs(q_len: usize, t_len: usize, seed: u64) -> (Vec<Base>, Vec<Base>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let q = random_seq(&mut rng, q_len, 0.5, 0.0).representative_bases();
    let t = random_seq(&mut rng, t_len, 0.5, 0.0).representative_bases();
    (q, t)
}

fn bench_sw_score(c: &mut Criterion) {
    let scheme = ScoringScheme::blastn();
    let mut group = c.benchmark_group("sw_score");
    for (q_len, t_len) in [(200usize, 200usize), (400, 1000)] {
        let (q, t) = seqs(q_len, t_len, 7);
        group.throughput(Throughput::Elements((q_len * t_len) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{q_len}x{t_len}")),
            &(q, t),
            |b, (q, t)| b.iter(|| sw_score(q, t, &scheme)),
        );
    }
    group.finish();
}

fn bench_banded(c: &mut Criterion) {
    let scheme = ScoringScheme::blastn();
    let (q, t) = seqs(400, 1000, 8);
    let mut group = c.benchmark_group("banded_sw");
    for half_width in [8usize, 24, 64] {
        group.throughput(Throughput::Elements(
            (q.len() * (2 * half_width + 1)) as u64,
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(half_width),
            &(q.clone(), t.clone()),
            |b, (q, t)| b.iter(|| banded_sw_score(q, t, &scheme, 0, half_width)),
        );
    }
    group.finish();
}

fn bench_traceback(c: &mut Criterion) {
    let scheme = ScoringScheme::blastn();
    // Related sequences so a real alignment exists to trace.
    let mut rng = StdRng::seed_from_u64(9);
    let base = random_seq(&mut rng, 300, 0.5, 0.0);
    let q = base.representative_bases();
    let t = nucdb_seq::MutationModel::standard(0.05)
        .apply(&base, &mut rng)
        .representative_bases();
    c.bench_function("sw_align_300_related", |b| {
        b.iter(|| sw_align(&q, &t, &scheme))
    });
}

fn bench_scanners(c: &mut Criterion) {
    let scheme = ScoringScheme::blastn();
    let (q, t) = seqs(300, 1000, 10);
    let fasta_table = WordTable::build(&q, FastaParams::default().ktup);
    let blast_table = WordTable::build(&q, BlastParams::default().word_len);
    let mut group = c.benchmark_group("scan_one_record");
    group.bench_function("fasta", |b| {
        b.iter(|| fasta_score(&fasta_table, &q, &t, &FastaParams::default(), &scheme))
    });
    group.bench_function("blast", |b| {
        b.iter(|| blast_score(&blast_table, &q, &t, &BlastParams::default(), &scheme))
    });
    group.bench_function("sw", |b| b.iter(|| sw_score(&q, &t, &scheme)));
    group.finish();
}

criterion_group!(
    benches,
    bench_sw_score,
    bench_banded,
    bench_traceback,
    bench_scanners
);
criterion_main!(benches);
