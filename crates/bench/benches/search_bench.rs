//! Criterion micro-benchmarks for end-to-end query evaluation: the
//! partitioned pipeline (and its two stages separately) on a 1 MB
//! database.

use criterion::{criterion_group, criterion_main, Criterion};
use nucdb::{coarse_rank, DbConfig, IndexVariant, RankingScheme, SearchParams};
use nucdb_bench::{collection, database, family_queries};

fn bench_search(c: &mut Criterion) {
    let coll = collection(21, 1_000_000);
    let db = database(&coll, &DbConfig::default());
    let (_, query) = family_queries(&coll, 0.6, 0.05).into_iter().next().unwrap();
    let query_bases = query.representative_bases();

    let mut group = c.benchmark_group("partitioned_search_1mb");
    group.bench_function("end_to_end", |b| {
        let params = SearchParams::default();
        b.iter(|| db.search(&query, &params).unwrap().results.len())
    });
    group.bench_function("coarse_only_frame", |b| {
        let params = SearchParams::default();
        let IndexVariant::Memory(index) = db.index() else { unreachable!() };
        b.iter(|| coarse_rank(index, &query_bases, &params).unwrap().candidates.len())
    });
    group.bench_function("coarse_only_count", |b| {
        let params = SearchParams::default().with_ranking(RankingScheme::Count);
        let IndexVariant::Memory(index) = db.index() else { unreachable!() };
        b.iter(|| coarse_rank(index, &query_bases, &params).unwrap().candidates.len())
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
