//! Criterion micro-benchmarks for end-to-end query evaluation: the
//! partitioned pipeline (and its two stages separately) on a 1 MB
//! database, plus the scratch-reusing coarse stage against the in-memory
//! and on-disk index backends at query strides 1 and 4.

use criterion::{criterion_group, criterion_main, Criterion};
use nucdb::{
    coarse_rank, coarse_rank_with, CoarseScratch, DbConfig, IndexVariant, RankingScheme,
    SearchParams,
};
use nucdb_bench::{collection, database, family_queries};

fn bench_search(c: &mut Criterion) {
    let coll = collection(21, 1_000_000);
    let db = database(&coll, &DbConfig::default());
    let (_, query) = family_queries(&coll, 0.6, 0.05).into_iter().next().unwrap();
    let query_bases = query.representative_bases();

    let mut group = c.benchmark_group("partitioned_search_1mb");
    group.bench_function("end_to_end", |b| {
        let params = SearchParams::default();
        b.iter(|| db.search(&query, &params).unwrap().results.len())
    });
    group.bench_function("coarse_only_frame", |b| {
        let params = SearchParams::default();
        let IndexVariant::Memory(index) = db.index() else {
            unreachable!()
        };
        b.iter(|| {
            coarse_rank(index, &query_bases, &params)
                .unwrap()
                .candidates
                .len()
        })
    });
    group.bench_function("coarse_only_count", |b| {
        let params = SearchParams::default().with_ranking(RankingScheme::Count);
        let IndexVariant::Memory(index) = db.index() else {
            unreachable!()
        };
        b.iter(|| {
            coarse_rank(index, &query_bases, &params)
                .unwrap()
                .candidates
                .len()
        })
    });
    group.finish();

    // The streaming coarse stage with a reused scratch: in-memory vs
    // on-disk postings, dense (stride 1) vs subsampled (stride 4) query
    // interval extraction.
    let dir = std::env::temp_dir().join(format!("nucdb_bench_coarse_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let disk_db = database(&coll, &DbConfig::default())
        .with_disk_index(&dir.join("idx.nucidx"))
        .expect("write on-disk index");

    let mut group = c.benchmark_group("coarse_scratch_1mb");
    for (backend, target) in [("memory", &db), ("disk", &disk_db)] {
        for stride in [1usize, 4] {
            let params = SearchParams {
                query_stride: stride,
                ..SearchParams::default()
            };
            group.bench_function(format!("{backend}_stride{stride}"), |b| {
                let mut scratch = CoarseScratch::new();
                b.iter(|| {
                    coarse_rank_with(target.index(), &query_bases, &params, &mut scratch)
                        .unwrap()
                        .candidates
                        .len()
                })
            });
        }
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
