//! Criterion micro-benchmarks for the index layer: interval extraction,
//! index build, postings decode, and direct-coding pack/unpack.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nucdb_bench::collection;
use nucdb_index::{IndexBuilder, IndexParams};
use nucdb_seq::kmer::KmerIter;
use nucdb_seq::{Base, PackedSeq};

fn bench_extraction(c: &mut Criterion) {
    let coll = collection(11, 200_000);
    let bases: Vec<Vec<Base>> = coll
        .records
        .iter()
        .map(|r| r.seq.representative_bases())
        .collect();
    let total: u64 = bases.iter().map(|b| b.len() as u64).sum();
    let mut group = c.benchmark_group("interval_extraction");
    group.throughput(Throughput::Elements(total));
    group.bench_function("k8_rolling", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for record in &bases {
                for (_, code) in KmerIter::new(record, 8) {
                    acc = acc.wrapping_add(code);
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let coll = collection(12, 200_000);
    let bases: Vec<Vec<Base>> = coll
        .records
        .iter()
        .map(|r| r.seq.representative_bases())
        .collect();
    let total: u64 = bases.iter().map(|b| b.len() as u64).sum();
    let mut group = c.benchmark_group("index_build_200k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    group.bench_function("k8_paper", |b| {
        b.iter(|| {
            let mut builder = IndexBuilder::new(IndexParams::new(8));
            for record in &bases {
                builder.add_record(record);
            }
            builder.finish().distinct_intervals()
        })
    });
    group.finish();
}

fn bench_postings_decode(c: &mut Criterion) {
    let coll = collection(13, 1_000_000);
    let mut builder = IndexBuilder::new(IndexParams::new(8));
    for record in &coll.records {
        builder.add_record(&record.seq.representative_bases());
    }
    let index = builder.finish();
    // The 64 longest lists: what a real query's frequent intervals cost.
    let mut entries: Vec<_> = index.vocab().to_vec();
    entries.sort_by_key(|e| std::cmp::Reverse(e.df));
    let codes: Vec<u64> = entries.iter().take(64).map(|e| e.code).collect();
    let postings: u64 = entries.iter().take(64).map(|e| e.df as u64).sum();

    let mut group = c.benchmark_group("postings_decode");
    group.throughput(Throughput::Elements(postings));
    group.bench_function("64_longest_lists", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &code in &codes {
                total += index.postings(code).unwrap().unwrap().df();
            }
            total
        })
    });
    group.finish();
}

fn bench_direct_coding(c: &mut Criterion) {
    let coll = collection(14, 200_000);
    let seqs: Vec<_> = coll.records.iter().map(|r| r.seq.clone()).collect();
    let packed: Vec<PackedSeq> = seqs.iter().map(PackedSeq::pack).collect();
    let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();

    let mut group = c.benchmark_group("direct_coding");
    group.throughput(Throughput::Elements(total));
    group.bench_function("pack", |b| {
        b.iter(|| {
            seqs.iter()
                .map(|s| PackedSeq::pack(s).packed_bytes())
                .sum::<usize>()
        })
    });
    group.bench_function("unpack_bases", |b| {
        b.iter(|| packed.iter().map(|p| p.unpack_bases().len()).sum::<usize>())
    });
    group.bench_function("unpack_ascii", |b| {
        b.iter(|| packed.iter().map(|p| p.unpack_ascii().len()).sum::<usize>())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_build,
    bench_postings_decode,
    bench_direct_coding
);
criterion_main!(benches);
