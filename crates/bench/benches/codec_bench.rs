//! Criterion micro-benchmarks for the integer codecs: encode and decode
//! throughput over geometric-ish gap streams (the distribution postings
//! gaps actually follow).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nucdb_codec::{BitReader, BitWriter, Delta, FixedWidth, Gamma, Golomb, IntCodec, Rice, VByte};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn geometric_gaps(n: usize, mean: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (-(rng.random::<f64>().max(1e-12).ln()) * mean) as u64)
        .collect()
}

fn codecs(mean: f64) -> Vec<(&'static str, Box<dyn IntCodec>)> {
    vec![
        ("golomb-fit", Box::new(Golomb::fit_mean(mean))),
        ("rice-fit", Box::new(Rice::fit_mean(mean))),
        ("gamma", Box::new(Gamma)),
        ("delta", Box::new(Delta)),
        ("vbyte", Box::new(VByte)),
        ("fixed32", Box::new(FixedWidth::new(32))),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let gaps = geometric_gaps(16_384, 40.0, 1);
    let mut group = c.benchmark_group("codec_encode");
    group.throughput(Throughput::Elements(gaps.len() as u64));
    for (name, codec) in codecs(40.0) {
        group.bench_with_input(BenchmarkId::from_parameter(name), &gaps, |b, gaps| {
            b.iter(|| {
                let mut w = BitWriter::with_capacity_bits(gaps.len() * 16);
                codec.encode_slice(gaps, &mut w);
                w.len_bits()
            })
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let gaps = geometric_gaps(16_384, 40.0, 2);
    let mut group = c.benchmark_group("codec_decode");
    group.throughput(Throughput::Elements(gaps.len() as u64));
    for (name, codec) in codecs(40.0) {
        let mut w = BitWriter::new();
        codec.encode_slice(&gaps, &mut w);
        let bytes = w.into_bytes();
        group.bench_with_input(BenchmarkId::from_parameter(name), &bytes, |b, bytes| {
            b.iter(|| {
                let mut r = BitReader::new(bytes);
                codec.decode_vec(&mut r, gaps.len()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_interpolative(c: &mut Criterion) {
    use nucdb_codec::{interpolative_decode, interpolative_encode};
    // A sorted posting-like list: cumulative geometric gaps.
    let gaps = geometric_gaps(16_384, 40.0, 3);
    let mut values = Vec::with_capacity(gaps.len());
    let mut cur = 0u64;
    for g in gaps {
        cur += g + 1;
        values.push(cur);
    }
    let hi = *values.last().unwrap();

    let mut group = c.benchmark_group("interpolative");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity_bits(values.len() * 16);
            interpolative_encode(&values, 0, hi, &mut w);
            w.len_bits()
        })
    });
    let mut w = BitWriter::new();
    interpolative_encode(&values, 0, hi, &mut w);
    let bytes = w.into_bytes();
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&bytes);
            interpolative_decode(values.len(), 0, hi, &mut r).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode, bench_interpolative);
criterion_main!(benches);
