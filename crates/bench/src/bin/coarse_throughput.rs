//! **BENCH — coarse-stage throughput and thread scaling.**
//!
//! Measures the contention-free coarse path end to end: queries stream
//! their postings straight off an **on-disk index** through lock-free
//! positional reads into per-worker reusable [`CoarseScratch`]es — no
//! per-query allocation, no shared file cursor, no lock. The sweep runs
//! the same query batch at 1, 2, 4 and 8 worker threads (work-stealing
//! over a shared atomic counter) and reports queries/second and the
//! speedup over single-threaded, writing `results/BENCH_coarse.json`.
//!
//! Numbers are honest for the machine they ran on: `host_cpus` records
//! how many CPUs were actually available, and thread counts above it
//! cannot show real scaling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use nucdb::{coarse_rank_with, CoarseScratch, Database, DbConfig, SearchParams};
use nucdb_bench::json::Value;
use nucdb_bench::{
    banner, collection, database, family_queries, latency_block, results_path, Table,
};
use nucdb_index::ListCodec;
use nucdb_obs::{Forensics, ForensicsConfig, Histogram};
use nucdb_seq::{Base, DnaSeq};

const THREADS: &[usize] = &[1, 2, 4, 8];
const REPEATS: usize = 3;
/// Coarse floor for the shared-segment screening workload: above what
/// the shared segment alone can contribute — each offset visit adds the
/// query-run length, so a background record sharing the 60-base segment
/// accumulates ~100 hits, not ~53 — while staying below what a full
/// match (shared + unique half) accumulates. At this floor every
/// background record is provably hopeless once the query is mostly
/// consumed, so whole blocks of the shared lists can be skipped.
const SKIP_FLOOR: u32 = 120;

/// Work counters accumulated over a whole query batch.
#[derive(Default)]
struct Work {
    postings_bytes_read: u64,
    ids_decoded: u64,
    blocks_decoded: u64,
    blocks_skipped: u64,
    lists_fetched: u64,
}

/// Single-threaded batch run that also sums the per-query work
/// counters (the codec-comparison rows report work, not scaling).
fn run_counted(db: &Database, queries: &[Vec<Base>], params: &SearchParams) -> (Duration, Work) {
    let mut scratch = CoarseScratch::new();
    let mut work = Work::default();
    let start = Instant::now();
    for query in queries {
        let outcome =
            coarse_rank_with(db.index(), query, params, &mut scratch).expect("coarse search");
        work.postings_bytes_read += outcome.postings_bytes_read;
        work.ids_decoded += outcome.postings_decoded;
        work.blocks_decoded += outcome.blocks_decoded;
        work.blocks_skipped += outcome.blocks_skipped;
        work.lists_fetched += outcome.lists_fetched;
        std::hint::black_box(outcome.candidates.len());
    }
    (start.elapsed(), work)
}

/// The shared-segment screening workload: thousands of background
/// records carry the same 60-base segment (so its interval lists span
/// dozens of 128-posting blocks), a handful of targets additionally
/// carry the query's unique half, and the floor demands more than the
/// shared segment alone can deliver. This is the shape hopeless-block
/// skipping is built for: contaminant/near-duplicate screening, where
/// almost every block of the fat shared lists is provably below the
/// floor by the time it is read.
fn shared_segment_records() -> (Vec<(String, nucdb_seq::DnaSeq)>, Vec<Base>) {
    let common = b"ACGTAGCTAGCTGGATCCAATTGGCCAACCTGGATTACAGGCATGCATAAGCTTGGCACC";
    let unique = b"TGCATGCATTGCAACGGTACCTTAGGCATCGGTACCAATGCCTAGGTTAACGGCCTTGCA";
    let mut records = Vec::new();
    for t in 0..8usize {
        let mut full = Vec::from(&common[..]);
        full.extend_from_slice(unique);
        full.extend((0..20).map(|p| b"ACGT"[(t * 13 + p * 7) % 4]));
        records.push((
            format!("target{t}"),
            nucdb_seq::DnaSeq::from_ascii(&full).unwrap(),
        ));
    }
    for i in 0..4_000usize {
        let mut r = Vec::from(&common[..]);
        r.extend((0..60).map(|p| b"ACGT"[(i * 31 + p * 7 + i * p) % 4]));
        records.push((format!("bg{i}"), nucdb_seq::DnaSeq::from_ascii(&r).unwrap()));
    }
    let mut query = Vec::from(&common[..]);
    query.extend_from_slice(unique);
    let query = nucdb_seq::DnaSeq::from_ascii(&query)
        .unwrap()
        .representative_bases();
    (records, query)
}

/// Run the whole query batch across `num_threads` workers, each owning a
/// private scratch, and return the best-of-`REPEATS` wall time.
/// Per-query latencies land in `latency` (a disabled histogram records
/// nothing and costs one branch, so the sweep pays only the `Instant`
/// reads either way).
fn run_batch(
    db: &Database,
    queries: &[Vec<Base>],
    params: &SearchParams,
    num_threads: usize,
    latency: &Histogram,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPEATS {
        let next = AtomicUsize::new(0);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..num_threads {
                scope.spawn(|| {
                    let mut scratch = CoarseScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        let outcome =
                            coarse_rank_with(db.index(), &queries[i], params, &mut scratch)
                                .expect("coarse search failed");
                        std::hint::black_box(outcome.candidates.len());
                        latency.record_duration(t0.elapsed());
                    }
                });
            }
        });
        best = best.min(start.elapsed());
    }
    best
}

/// Full two-stage search (coarse + fine + strand merge) over the whole
/// batch, single-threaded, best of `REPEATS`. This is the path the
/// flight recorder instruments, so the forensics overhead is measured
/// here rather than on the coarse-only loop.
fn run_full(db: &Database, queries: &[DnaSeq], ids: &[String], params: &SearchParams) -> Duration {
    let mut scratch = CoarseScratch::new();
    let mut best = Duration::MAX;
    for _ in 0..REPEATS {
        let start = Instant::now();
        for (query, id) in queries.iter().zip(ids) {
            let outcome = db
                .search_with_id(query, params, &mut scratch, Some(id))
                .expect("search failed");
            std::hint::black_box(outcome.results.len());
        }
        best = best.min(start.elapsed());
    }
    best
}

/// Print the flight recorder's slowest retained queries, the same table
/// `nucdb bench --flight-recorder` prints at run end.
fn print_slowest(forensics: &Forensics, top: usize) {
    let mut entries = forensics.recent();
    entries.sort_by_key(|e| std::cmp::Reverse(e.trace.total_ns));
    println!(
        "\nslowest queries (flight recorder, {} retained):",
        entries.len()
    );
    let mut table = Table::new(&["query", "total ms", "results", "reason"]);
    for entry in entries.iter().take(top) {
        table.row(vec![
            entry.trace.request_id.clone(),
            format!("{:.3}", entry.trace.total_ns as f64 / 1e6),
            entry.trace.results.to_string(),
            entry.reason.as_str().to_string(),
        ]);
    }
    table.print();
}

fn main() {
    banner(
        "BENCH",
        "coarse-stage throughput across worker threads (on-disk index)",
    );
    // `--flight-recorder N` sizes the ring used for the forensics
    // overhead measurement (default 256, the serve default).
    let argv: Vec<String> = std::env::args().collect();
    let flight_capacity: usize = argv
        .iter()
        .position(|a| a == "--flight-recorder")
        .and_then(|i| argv.get(i + 1))
        .map(|v| v.parse().expect("--flight-recorder expects a count"))
        .unwrap_or(256);
    let size = 2_000_000usize;
    let coll = collection(0xC0A53, size);
    let db = database(&coll, &DbConfig::default());
    let dir = std::env::temp_dir().join(format!("nucdb_coarse_tp_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut db = db
        .with_disk_index(&dir.join("idx.nucidx"))
        .expect("write on-disk index");
    let params = SearchParams::default();

    // A batch big enough that work-stealing amortises: every family query
    // repeated until we have 64 queries.
    let family_seqs: Vec<DnaSeq> = family_queries(&coll, 0.6, 0.05)
        .into_iter()
        .map(|(_, q)| q)
        .collect();
    let family: Vec<Vec<Base>> = family_seqs
        .iter()
        .map(|q| q.representative_bases())
        .collect();
    let queries: Vec<Vec<Base>> = (0..64).map(|i| family[i % family.len()].clone()).collect();
    let full_queries: Vec<DnaSeq> = (0..64)
        .map(|i| family_seqs[i % family_seqs.len()].clone())
        .collect();
    let full_ids: Vec<String> = (0..full_queries.len())
        .map(|i| format!("bench-{i}"))
        .collect();

    // Warm up: fault in the vocabulary and OS page cache so the sweep
    // measures decode + accumulate, not first-touch I/O.
    run_batch(
        &db,
        &queries[..8.min(queries.len())],
        &params,
        1,
        &Histogram::disabled(),
    );

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut table = Table::new(&["threads", "wall ms", "queries/s", "speedup vs 1"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut single_qps = 0.0f64;
    for &threads in THREADS {
        let wall = run_batch(&db, &queries, &params, threads, &Histogram::disabled());
        let qps = queries.len() as f64 / wall.as_secs_f64();
        if threads == 1 {
            single_qps = qps;
        }
        let speedup = qps / single_qps;
        table.row(vec![
            threads.to_string(),
            format!("{:.2}", wall.as_secs_f64() * 1e3),
            format!("{:.0}", qps),
            format!("{:.2}x", speedup),
        ]);
        rows.push(Value::Obj(vec![
            ("threads", Value::Int(threads as u64)),
            ("wall_ms", Value::Num(wall.as_secs_f64() * 1e3)),
            ("queries_per_sec", Value::Num(qps)),
            ("speedup_vs_single_thread", Value::Num(speedup)),
        ]));
    }
    table.print();
    println!("\nhost CPUs available: {host_cpus} (thread counts above this cannot scale)");

    // Metrics overhead: the same single-threaded batch with the latency
    // histogram disabled (one branch per query) vs live (three relaxed
    // atomic RMWs per query). The live run also supplies the per-query
    // latency distribution for the JSON output.
    let wall_disabled = run_batch(&db, &queries, &params, 1, &Histogram::disabled());
    let hist = Histogram::new();
    let wall_enabled = run_batch(&db, &queries, &params, 1, &hist);
    let latency = hist.snapshot();
    let overhead_pct = (wall_enabled.as_secs_f64() / wall_disabled.as_secs_f64() - 1.0) * 100.0;
    println!(
        "\nmetrics overhead (1 thread): disabled {:.2} ms, enabled {:.2} ms ({overhead_pct:+.2}%)",
        wall_disabled.as_secs_f64() * 1e3,
        wall_enabled.as_secs_f64() * 1e3,
    );
    println!(
        "per-query coarse latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        latency.p50() as f64 / 1e6,
        latency.p90() as f64 / 1e6,
        latency.p99() as f64 / 1e6,
        latency.max as f64 / 1e6,
    );

    // Explain overhead: the full two-stage path with plan collection
    // never requested (plain), requested off again (an A/A re-run that
    // bounds the measurement floor — with `explain: false` the engine
    // takes the identical Option-gated path), and requested on. The
    // acceptance bar is ≤3% for explain-off; explain-on is reported but
    // unbudgeted (collecting a plan is allowed to cost something).
    run_full(&db, &full_queries[..8], &full_ids[..8], &params); // warm fine stage
    let explain_plain = run_full(&db, &full_queries, &full_ids, &params);
    let explain_off = run_full(&db, &full_queries, &full_ids, &params);
    let explain_on_params = SearchParams {
        explain: true,
        ..params
    };
    let explain_on = run_full(&db, &full_queries, &full_ids, &explain_on_params);
    let explain_off_pct = (explain_off.as_secs_f64() / explain_plain.as_secs_f64() - 1.0) * 100.0;
    let explain_on_pct = (explain_on.as_secs_f64() / explain_plain.as_secs_f64() - 1.0) * 100.0;
    println!(
        "\nexplain overhead (full search, 1 thread): plain {:.2} ms, \
         explain-off {:.2} ms ({explain_off_pct:+.2}%), explain-on {:.2} ms ({explain_on_pct:+.2}%)",
        explain_plain.as_secs_f64() * 1e3,
        explain_off.as_secs_f64() * 1e3,
        explain_on.as_secs_f64() * 1e3,
    );

    // Forensics overhead: the full two-stage search path with the flight
    // recorder off vs on. Enabled runs build a span tree per query and
    // push one entry into the recent ring; the acceptance bar is ≤3%.
    let forensics_off = run_full(&db, &full_queries, &full_ids, &params);
    db.set_forensics(Forensics::new(ForensicsConfig {
        recent_capacity: flight_capacity,
        ..ForensicsConfig::default()
    }));
    let forensics_on = run_full(&db, &full_queries, &full_ids, &params);
    let forensics_pct = (forensics_on.as_secs_f64() / forensics_off.as_secs_f64() - 1.0) * 100.0;
    println!(
        "\nforensics overhead (full search, 1 thread, flight recorder cap {flight_capacity}): \
         disabled {:.2} ms, enabled {:.2} ms ({forensics_pct:+.2}%)",
        forensics_off.as_secs_f64() * 1e3,
        forensics_on.as_secs_f64() * 1e3,
    );
    print_slowest(db.forensics(), 5);

    // Per-codec work counters: the same batch over the bit-serial paper
    // codec and the NUCIDX04 block codec, at the default floor and at an
    // elevated floor where hopeless-block skipping can fire. Wall time
    // alone hides *why* a codec wins; bytes read, ids decoded and blocks
    // skipped say where the work went.
    let mut work_table = Table::new(&[
        "workload",
        "codec",
        "floor",
        "wall ms",
        "bytes read",
        "ids decoded",
        "blocks dec",
        "blocks skip",
    ]);
    let mut work_rows: Vec<Value> = Vec::new();
    let (screen_records, screen_query) = shared_segment_records();
    let screen_queries: Vec<Vec<Base>> = (0..16).map(|_| screen_query.clone()).collect();
    for (ci, codec) in [ListCodec::Paper, ListCodec::Block].into_iter().enumerate() {
        let config = DbConfig {
            codec,
            ..DbConfig::default()
        };
        let codec_dir = dir.join(format!("work_{ci}"));
        std::fs::create_dir_all(&codec_dir).unwrap();
        let family_db = database(&coll, &config)
            .with_disk_index(&codec_dir.join("family.nucidx"))
            .expect("write on-disk index");
        let screen_db = Database::build(screen_records.iter().cloned(), &config)
            .with_disk_index(&codec_dir.join("screen.nucidx"))
            .expect("write on-disk index");

        let sweep: [(&str, &Database, &[Vec<Base>], u32); 2] = [
            ("family", &family_db, &queries, params.min_coarse_hits),
            ("screen", &screen_db, &screen_queries, SKIP_FLOOR),
        ];
        for (workload, work_db, batch, floor) in sweep {
            let p = SearchParams {
                min_coarse_hits: floor,
                ..SearchParams::default()
            };
            run_counted(work_db, &batch[..8], &p); // warm
            let (wall, work) = run_counted(work_db, batch, &p);
            work_table.row(vec![
                workload.to_string(),
                codec.name().to_string(),
                floor.to_string(),
                format!("{:.2}", wall.as_secs_f64() * 1e3),
                work.postings_bytes_read.to_string(),
                work.ids_decoded.to_string(),
                work.blocks_decoded.to_string(),
                work.blocks_skipped.to_string(),
            ]);
            work_rows.push(Value::Obj(vec![
                ("workload", Value::Str(workload.into())),
                ("codec", Value::Str(codec.name().into())),
                ("min_coarse_hits", Value::Int(floor as u64)),
                ("queries", Value::Int(batch.len() as u64)),
                ("wall_ms", Value::Num(wall.as_secs_f64() * 1e3)),
                ("lists_fetched", Value::Int(work.lists_fetched)),
                ("postings_bytes_read", Value::Int(work.postings_bytes_read)),
                ("ids_decoded", Value::Int(work.ids_decoded)),
                ("blocks_decoded", Value::Int(work.blocks_decoded)),
                ("blocks_skipped", Value::Int(work.blocks_skipped)),
            ]));
        }
    }
    println!("\nper-codec work counters (single thread):");
    work_table.print();

    let out = Value::Obj(vec![
        ("experiment", Value::Str("coarse_throughput".into())),
        (
            "description",
            Value::Str(
                "coarse-stage queries/sec over an on-disk index, per-worker scratch, \
                 lock-free positional postings reads"
                    .into(),
            ),
        ),
        ("collection_bases", Value::Int(size as u64)),
        ("records", Value::Int(coll.records.len() as u64)),
        ("queries", Value::Int(queries.len() as u64)),
        ("repeats_best_of", Value::Int(REPEATS as u64)),
        ("host_cpus", Value::Int(host_cpus as u64)),
        ("sweep", Value::Arr(rows)),
        ("codec_work", Value::Arr(work_rows)),
        ("latency_ns", latency_block(&latency)),
        (
            "metrics_overhead",
            Value::Obj(vec![
                (
                    "wall_ms_disabled",
                    Value::Num(wall_disabled.as_secs_f64() * 1e3),
                ),
                (
                    "wall_ms_enabled",
                    Value::Num(wall_enabled.as_secs_f64() * 1e3),
                ),
                ("overhead_pct", Value::Num(overhead_pct)),
            ]),
        ),
        (
            "explain_overhead",
            Value::Obj(vec![
                ("queries", Value::Int(full_queries.len() as u64)),
                (
                    "wall_ms_plain",
                    Value::Num(explain_plain.as_secs_f64() * 1e3),
                ),
                (
                    "wall_ms_explain_off",
                    Value::Num(explain_off.as_secs_f64() * 1e3),
                ),
                (
                    "wall_ms_explain_on",
                    Value::Num(explain_on.as_secs_f64() * 1e3),
                ),
                ("explain_off_overhead_pct", Value::Num(explain_off_pct)),
                ("explain_on_overhead_pct", Value::Num(explain_on_pct)),
            ]),
        ),
        (
            "forensics_overhead",
            Value::Obj(vec![
                (
                    "flight_recorder_capacity",
                    Value::Int(flight_capacity as u64),
                ),
                ("queries", Value::Int(full_queries.len() as u64)),
                (
                    "wall_ms_disabled",
                    Value::Num(forensics_off.as_secs_f64() * 1e3),
                ),
                (
                    "wall_ms_enabled",
                    Value::Num(forensics_on.as_secs_f64() * 1e3),
                ),
                ("overhead_pct", Value::Num(forensics_pct)),
            ]),
        ),
    ]);
    let path = results_path("BENCH_coarse.json");
    std::fs::write(&path, out.render() + "\n").expect("write BENCH_coarse.json");
    println!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&dir);
}
