//! **E8 — Coarse ranking ablation: Count vs. Proportional vs. Frame.**
//!
//! The design choice at the heart of "likely answers": how should raw
//! interval hits be turned into a candidate ranking? The workload plants,
//! alongside each homolog family, *decoy* records — the family parent's
//! blocks in shuffled order. A decoy shares almost all of the parent's
//! intervals (hit counting cannot tell it from a member) but has no long
//! common diagonal (no good local alignment exists). Diagonal-structured
//! ranking should demote decoys; counting should not.

use nucdb::{coarse_rank, recall_at, DbConfig, IndexVariant, RankingScheme, SearchParams};
use nucdb_bench::{banner, database, family_queries, family_relevant, Table};
use nucdb_seq::random::{CollectionSpec, SyntheticCollection};

fn main() {
    banner("E8", "coarse ranking schemes vs shuffled-block decoys");
    let spec = CollectionSpec {
        repeat_prob: 0.25,
        repeat_families: 4,
        decoys_per_family: 3,
        ..CollectionSpec::sized(0xE8, 4_000_000)
    };
    let coll = SyntheticCollection::generate(&spec);
    let db = database(&coll, &DbConfig::default());
    let queries = family_queries(&coll, 0.6, 0.08);
    println!(
        "collection: {} records ({} decoys); divergence 8% queries",
        coll.records.len(),
        coll.families
            .iter()
            .map(|f| f.decoy_ids.len())
            .sum::<usize>()
    );

    let schemes: &[(&str, RankingScheme)] = &[
        ("count", RankingScheme::Count),
        ("proportional", RankingScheme::Proportional),
        ("frame w=4", RankingScheme::Frame { window: 4 }),
        ("frame w=16", RankingScheme::Frame { window: 16 }),
        ("frame w=64", RankingScheme::Frame { window: 64 }),
    ];

    let mut table = Table::new(&[
        "ranking",
        "members in coarse top-5",
        "decoys in coarse top-5",
        "recall@10 (end-to-end)",
    ]);

    for &(label, ranking) in schemes {
        let mut member5 = 0.0;
        let mut decoy5 = 0.0;
        let mut recall = 0.0;
        for (f, query) in &queries {
            let family = family_relevant(&coll, *f);
            let decoys: std::collections::HashSet<u32> =
                coll.families[*f].decoy_ids.iter().copied().collect();
            let params = SearchParams::default()
                .with_ranking(ranking)
                .with_candidates(30);

            let IndexVariant::Memory(index) = db.index() else {
                unreachable!()
            };
            let coarse = coarse_rank(index, &query.representative_bases(), &params).unwrap();
            let top5: Vec<u32> = coarse.candidates.iter().take(5).map(|c| c.record).collect();
            member5 += top5.iter().filter(|r| family.contains(r)).count() as f64;
            decoy5 += top5.iter().filter(|r| decoys.contains(r)).count() as f64;

            let outcome = db.search(query, &params).unwrap();
            let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
            recall += recall_at(&ranked, &family, 10);
        }
        let n = queries.len() as f64;
        table.row(vec![
            label.to_string(),
            format!("{:.2}", member5 / n),
            format!("{:.2}", decoy5 / n),
            format!("{:.3}", recall / n),
        ]);
    }
    table.print();
    println!(
        "\nDecoys carry the same intervals as true members, so counting ranks them\n\
         together; only the diagonal-windowed frame score separates alignable records\n\
         from shuffled impostors before any alignment is computed. (Fine search cleans\n\
         up either way — the coarse columns show who wastes fine alignments on decoys.)"
    );
}
