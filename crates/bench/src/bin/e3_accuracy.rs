//! **E3 — Retrieval effectiveness vs. the fine-search candidate cutoff.**
//!
//! Partitioned search's central trade-off: the more coarse candidates are
//! passed to fine alignment, the closer the answers match exhaustive
//! Smith–Waterman — and the slower the query. This harness sweeps the
//! cutoff `C` and reports recall of the SW top-10, recall of the planted
//! family, average precision against the family, and mean query time.

use std::collections::HashSet;

use nucdb::{average_precision, ground_truth_sw, recall_at, DbConfig, SearchParams};
use nucdb_bench::{banner, collection, database, family_queries, family_relevant, time, Table};

fn main() {
    banner("E3", "accuracy vs fine-search candidate cutoff C");
    let coll = collection(0xE3, 4_000_000);
    let db = database(&coll, &DbConfig::default());
    let queries = family_queries(&coll, 0.6, 0.06);
    println!(
        "collection: {} records; {} family queries",
        coll.records.len(),
        queries.len()
    );

    // Exhaustive SW ground truth per query (computed once). Two truth
    // sets: the raw top-10 (which includes chance alignments too weak to
    // leave any intact interval in the index — the paper's "answers" are
    // *high-quality* alignments, not these), and the significant top-10
    // (score at least a quarter of the query's self-score).
    println!("computing exhaustive Smith-Waterman ground truth ...");
    let scheme = SearchParams::default().scheme;
    let mut truths_raw: Vec<HashSet<u32>> = Vec::new();
    let mut truths_sig: Vec<HashSet<u32>> = Vec::new();
    for (_, q) in &queries {
        let hits = ground_truth_sw(db.store(), &q.representative_bases(), &scheme);
        truths_raw.push(hits.iter().take(10).map(|h| h.id).collect());
        let cutoff = (scheme.max_score(q.len()) / 4) as i32;
        truths_sig.push(
            hits.iter()
                .take(10)
                .filter(|h| h.score >= cutoff)
                .map(|h| h.id)
                .collect(),
        );
    }

    let mut table = Table::new(&[
        "C",
        "fine",
        "recall@10 SW-top10",
        "recall@10 SW-significant",
        "family recall@10",
        "family AP",
        "query ms",
    ]);

    for (label, fine) in [
        ("full", nucdb::FineMode::Full),
        ("banded", nucdb::FineMode::default()),
    ] {
        for c in [1usize, 2, 5, 10, 20, 50, 100, 200, 500] {
            let params = SearchParams::default().with_candidates(c).with_fine(fine);
            let mut raw_recall = 0.0;
            let mut sig_recall = 0.0;
            let mut fam_recall = 0.0;
            let mut fam_ap = 0.0;
            let mut total = std::time::Duration::ZERO;
            for (i, (f, query)) in queries.iter().enumerate() {
                let (outcome, took) = time(|| db.search(query, &params).unwrap());
                total += took;
                let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
                raw_recall += recall_at(&ranked, &truths_raw[i], 10);
                sig_recall += recall_at(&ranked, &truths_sig[i], 10);
                let family = family_relevant(&coll, *f);
                fam_recall += recall_at(&ranked, &family, 10);
                fam_ap += average_precision(&ranked, &family);
            }
            let n = queries.len() as f64;
            table.row(vec![
                c.to_string(),
                label.to_string(),
                format!("{:.3}", raw_recall / n),
                format!("{:.3}", sig_recall / n),
                format!("{:.3}", fam_recall / n),
                format!("{:.3}", fam_ap / n),
                format!("{:.2}", total.as_secs_f64() * 1e3 / n),
            ]);
        }
    }
    table.print();
    println!(
        "\nSignificant answers (and planted homologs) are recovered at modest C; the raw\n\
         SW top-10 plateaus below 1.0 because its tail is chance alignments too weak to\n\
         leave a single intact interval in the index — the accuracy loss the CAFE line\n\
         reports is concentrated exactly there. Banded fine alignment keeps homolog\n\
         recall at a fraction of the full-alignment cost."
    );
}
