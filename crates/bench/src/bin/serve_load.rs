//! `serve_load`: loopback load benchmark for the `nucdb-serve` HTTP
//! server, writing `results/BENCH_serve.json`.
//!
//! Builds a deterministic synthetic collection, measures the
//! single-process baseline (the same queries through
//! `Database::search_batch` on one thread, and
//! `search_batch_parallel` on four), then starts the server on an
//! ephemeral loopback port and drives it with raw `TcpStream` clients
//! at concurrency 1, 2, and 4 — one FASTA query per `POST /search`,
//! keep-alive connections, per-request latency into a histogram.
//!
//! The acceptance block records the concurrency-4 QPS against two
//! single-process references: the one-thread in-process rate on this
//! exact workload, and `coarse_throughput`'s single-thread figure from
//! `results/BENCH_coarse.json` when present.
//!
//! Env knobs: `SERVE_LOAD_BASES` (collection size, default 250,000),
//! `SERVE_LOAD_REQUESTS` (requests per sweep point, default 256), and
//! `SERVE_LOAD_BATCH_WINDOW_MS` (micro-batch window, default off).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use nucdb::{DbConfig, SearchParams};
use nucdb_bench::json::Value;
use nucdb_bench::{
    banner, collection, database, family_queries, group_thousands, latency_block, results_path,
    time, Table,
};
use nucdb_obs::{Histogram, MetricsRegistry};
use nucdb_seq::DnaSeq;
use nucdb_serve::{start, ServeConfig};

const CONCURRENCY: &[usize] = &[1, 2, 4];

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Send one `POST /search` on a keep-alive connection and read the full
/// response back. Returns (status, body).
fn post_search(conn: &mut TcpStream, body: &str) -> (u16, String) {
    let request = format!(
        "POST /search HTTP/1.1\r\nHost: bench\r\nContent-Type: text/plain\r\n\
         Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
        body.len(),
        body
    );
    conn.write_all(request.as_bytes()).expect("write request");
    read_response(conn)
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn read_response(conn: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::with_capacity(4096);
    let mut tmp = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
            break pos + 4;
        }
        let n = conn.read(&mut tmp).expect("read response head");
        assert!(n > 0, "server closed connection before response head");
        buf.extend_from_slice(&tmp[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in response line");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (key, value) = line.split_once(':')?;
            if key.eq_ignore_ascii_case("content-length") {
                value.trim().parse().ok()
            } else {
                None
            }
        })
        .expect("Content-Length header");
    while buf.len() < header_end + content_length {
        let n = conn.read(&mut tmp).expect("read response body");
        assert!(n > 0, "server closed connection mid-body");
        buf.extend_from_slice(&tmp[..n]);
    }
    let body = String::from_utf8_lossy(&buf[header_end..header_end + content_length]).into_owned();
    (status, body)
}

fn qps(requests: usize, wall: Duration) -> f64 {
    requests as f64 / wall.as_secs_f64()
}

fn main() {
    banner("serve_load", "nucdb-serve loopback throughput and latency");
    let bases = env_usize("SERVE_LOAD_BASES", 250_000);
    let requests = env_usize("SERVE_LOAD_REQUESTS", 256);
    // Micro-batching trades latency for parallel evaluation; on a
    // single-CPU host the window is pure overhead, so it defaults off
    // here and can be enabled with SERVE_LOAD_BATCH_WINDOW_MS.
    let batch_window_ms = env_usize("SERVE_LOAD_BATCH_WINDOW_MS", 0);
    let batch_window = (batch_window_ms > 0).then(|| Duration::from_millis(batch_window_ms as u64));

    let coll = collection(0x05E1_10AD, bases);
    let mut db = database(&coll, &DbConfig::default());
    // Per-request work is deliberately light (short queries, few
    // candidates): this benchmark measures the serving layer, and a
    // cheap query maximises the HTTP/queueing share of each request.
    let queries = family_queries(&coll, 0.3, 0.05);
    let params = SearchParams {
        max_candidates: 8,
        max_results: 10,
        ..SearchParams::default()
    };
    println!(
        "collection: {} bases, {} records, {} distinct queries, {} requests per point",
        group_thousands(bases as u64),
        coll.records.len(),
        queries.len(),
        requests
    );

    // The request stream: one FASTA query per request, cycling the
    // family queries so every sweep point sees the same mix.
    let bodies: Vec<String> = (0..requests)
        .map(|i| {
            let (family, seq) = &queries[i % queries.len()];
            format!(
                ">fam{family}\n{}\n",
                String::from_utf8(seq.to_ascii_vec()).expect("ASCII bases")
            )
        })
        .collect();
    let direct_queries: Vec<DnaSeq> = (0..requests)
        .map(|i| queries[i % queries.len()].1.clone())
        .collect();

    // Single-process baselines on the exact same workload. The
    // one-thread figure is the "CLI-style" reference the server must
    // beat; the four-thread figure bounds what concurrency 4 could
    // achieve with zero HTTP overhead.
    let _ = db.search_batch(&direct_queries[..queries.len().min(requests)], &params);
    let (_, wall_direct_1t) = time(|| db.search_batch(&direct_queries, &params));
    let (_, wall_direct_4t) = time(|| db.search_batch_parallel(&direct_queries, &params, 4));
    let direct_qps_1t = qps(requests, wall_direct_1t);
    let direct_qps_4t = qps(requests, wall_direct_4t);
    println!(
        "direct baseline: {:.1} q/s on one thread, {:.1} q/s on four",
        direct_qps_1t, direct_qps_4t
    );

    let registry = MetricsRegistry::new();
    db.bind_metrics(&registry);
    let config = ServeConfig {
        threads: 4,
        search_threads: 4,
        batch_window,
        ..ServeConfig::default()
    };
    let handle = start(("127.0.0.1", 0), db, registry, params, config).expect("start server");
    let addr = handle.addr();
    match batch_window {
        Some(w) => println!(
            "server: {addr} (4 workers, {} ms batch window)",
            w.as_millis()
        ),
        None => println!("server: {addr} (4 workers, batching off)"),
    }

    // Warm the server path once before timing anything.
    {
        let mut conn = TcpStream::connect(addr).expect("warmup connect");
        let (status, _) = post_search(&mut conn, &bodies[0]);
        assert_eq!(status, 200, "warmup request failed");
    }

    let mut table = Table::new(&["concurrency", "wall ms", "queries/s", "p50 us", "p99 us"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut server_qps_c4 = 0.0f64;
    for &concurrency in CONCURRENCY {
        let latency = Histogram::new();
        let next = AtomicUsize::new(0);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..concurrency {
                scope.spawn(|| {
                    let mut conn = TcpStream::connect(addr).expect("client connect");
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= requests {
                            break;
                        }
                        let t0 = Instant::now();
                        let (status, body) = post_search(&mut conn, &bodies[i]);
                        latency.record_duration(t0.elapsed());
                        assert_eq!(status, 200, "request {i} failed: {body}");
                        assert!(body.contains("\"results\""), "request {i}: bad body");
                    }
                });
            }
        });
        let wall = started.elapsed();
        let point_qps = qps(requests, wall);
        if concurrency == 4 {
            server_qps_c4 = point_qps;
        }
        let snap = latency.snapshot();
        table.row(vec![
            concurrency.to_string(),
            format!("{:.2}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", point_qps),
            format!("{:.1}", snap.p50() as f64 / 1e3),
            format!("{:.1}", snap.p99() as f64 / 1e3),
        ]);
        rows.push(Value::Obj(vec![
            ("concurrency", Value::Int(concurrency as u64)),
            ("requests", Value::Int(requests as u64)),
            ("wall_ms", Value::Num(wall.as_secs_f64() * 1e3)),
            ("queries_per_sec", Value::Num(point_qps)),
            ("latency_ns", latency_block(&snap)),
        ]));
    }
    table.print();

    let served = handle.requests_ok();
    let registry = handle.shutdown().expect("registry returned after drain");
    let snapshot_len = registry.snapshot().metrics.len();
    println!("\nserver drained after {served} successful requests ({snapshot_len} metric series)");

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ratio = server_qps_c4 / direct_qps_1t;
    println!(
        "acceptance: server at concurrency 4 runs {:.2}x the single-process rate",
        ratio
    );

    // The bar from the standalone engine benchmark, when its results
    // file is present: coarse_throughput's single-thread queries/sec.
    let coarse_reference = std::fs::read_to_string(results_path("BENCH_coarse.json"))
        .ok()
        .and_then(|text| nucdb_obs::json::parse(&text).ok())
        .and_then(|doc| {
            let nucdb_obs::json::Value::Arr(rows) = doc.get("sweep")? else {
                return None;
            };
            rows.iter().find_map(|row| {
                if row.get("threads")?.as_f64()? == 1.0 {
                    row.get("queries_per_sec")?.as_f64()
                } else {
                    None
                }
            })
        });
    if let Some(reference) = coarse_reference {
        println!(
            "acceptance: server at concurrency 4 sustains {server_qps_c4:.1} q/s vs \
             coarse_throughput's {reference:.1} q/s single-process"
        );
    }

    let out = Value::Obj(vec![
        ("experiment", Value::Str("serve_load".into())),
        (
            "description",
            Value::Str(
                "POST /search throughput and latency over loopback keep-alive \
                 connections, versus the same queries through search_batch in-process"
                    .into(),
            ),
        ),
        ("collection_bases", Value::Int(bases as u64)),
        ("records", Value::Int(coll.records.len() as u64)),
        ("requests_per_point", Value::Int(requests as u64)),
        ("host_cpus", Value::Int(host_cpus as u64)),
        (
            "server",
            Value::Obj(vec![
                ("threads", Value::Int(4)),
                ("search_threads", Value::Int(4)),
                ("batch_window_ms", Value::Int(batch_window_ms as u64)),
            ]),
        ),
        (
            "direct",
            Value::Obj(vec![
                (
                    "single_thread",
                    Value::Obj(vec![
                        ("wall_ms", Value::Num(wall_direct_1t.as_secs_f64() * 1e3)),
                        ("queries_per_sec", Value::Num(direct_qps_1t)),
                    ]),
                ),
                (
                    "four_threads",
                    Value::Obj(vec![
                        ("wall_ms", Value::Num(wall_direct_4t.as_secs_f64() * 1e3)),
                        ("queries_per_sec", Value::Num(direct_qps_4t)),
                    ]),
                ),
            ]),
        ),
        ("sweep", Value::Arr(rows)),
        (
            "acceptance",
            Value::Obj(vec![
                ("server_qps_concurrency_4", Value::Num(server_qps_c4)),
                ("single_process_qps", Value::Num(direct_qps_1t)),
                ("ratio", Value::Num(ratio)),
                (
                    // null when BENCH_coarse.json has not been produced
                    // on this machine.
                    "coarse_throughput_single_thread_qps",
                    Value::Num(coarse_reference.unwrap_or(f64::NAN)),
                ),
            ]),
        ),
    ]);
    let path = results_path("BENCH_serve.json");
    std::fs::write(&path, out.render() + "\n").expect("write results");
    println!("wrote {}", path.display());
}
