//! **E6 — Direct coding of the sequence store.**
//!
//! The citing literature records that switching CAFE's sequence store to
//! 2-bit direct coding cut retrieval times by more than 20%. This harness
//! compares the ASCII store against the direct-coded store on (a) stored
//! bytes, (b) record decode throughput, and (c) end-to-end query time with
//! a fine-search-heavy configuration (many candidates, so store access
//! dominates).

use nucdb::{DbConfig, RecordSource, SearchParams, StorageMode};
use nucdb_bench::{banner, bytes, collection, database, family_queries, time, Table};

fn main() {
    banner("E6", "sequence store: ASCII vs 2-bit direct coding");
    let coll = collection(0xE6, 8_000_000);
    let queries = family_queries(&coll, 0.6, 0.05);
    println!(
        "collection: {} records, {} bases",
        coll.records.len(),
        coll.total_bases()
    );

    // Fine-heavy parameters: a large candidate cutoff makes the store the
    // dominant cost, as disk-resident sequences were in 1996.
    let params = SearchParams::default().with_candidates(200);

    let mut table = Table::new(&[
        "store",
        "stored B",
        "B/base",
        "decode GB/s",
        "query ms",
        "top hits equal",
    ]);

    let mut reference: Option<Vec<Vec<(u32, i32)>>> = None;
    for mode in [StorageMode::Ascii, StorageMode::DirectCoding] {
        let db = database(
            &coll,
            &DbConfig {
                storage: mode,
                ..DbConfig::default()
            },
        );

        // Decode throughput: unpack every record once.
        let (decoded_bases, decode_time) = time(|| {
            let mut total = 0usize;
            for record in 0..db.store().len() as u32 {
                total += db.store().bases(record).len();
            }
            total
        });

        let (results, query_time) = time(|| {
            queries
                .iter()
                .map(|(_, q)| {
                    db.search(q, &params)
                        .unwrap()
                        .results
                        .iter()
                        .map(|r| (r.record, r.score))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
        let equal = match &reference {
            None => {
                reference = Some(results);
                "-".to_string()
            }
            Some(reference) => (*reference == results).to_string(),
        };

        table.row(vec![
            format!("{mode:?}"),
            bytes(db.store().stored_bytes() as u64),
            format!(
                "{:.3}",
                db.store().stored_bytes() as f64 / db.store().total_bases() as f64
            ),
            format!(
                "{:.2}",
                decoded_bases as f64 / decode_time.as_secs_f64() / 1e9
            ),
            format!(
                "{:.2}",
                query_time.as_secs_f64() * 1e3 / queries.len() as f64
            ),
            equal,
        ]);
    }
    table.print();

    // The disk-resident configuration: index and store both on disk,
    // candidate records fetched per query. This is where the 4x smaller
    // reads become the paper's retrieval-time win.
    println!("\nfully on-disk databases (store fetched per candidate):");
    let mut disk_table = Table::new(&[
        "store",
        "store bytes read/query",
        "records fetched/query",
        "query ms",
    ]);
    let work = std::env::temp_dir().join(format!("nucdb_e6_{}", std::process::id()));
    std::fs::create_dir_all(&work).expect("temp dir");
    for mode in [StorageMode::Ascii, StorageMode::DirectCoding] {
        let tag = format!("{mode:?}");
        let db = database(
            &coll,
            &DbConfig {
                storage: mode,
                ..DbConfig::default()
            },
        )
        .with_disk_index(&work.join(format!("{tag}.nucidx")))
        .expect("disk index")
        .with_disk_store(&work.join(format!("{tag}.nucsto")))
        .expect("disk store");
        let mut bytes_read = 0u64;
        let mut records = 0u64;
        let (_, took) = time(|| {
            for (_, q) in &queries {
                if let nucdb::StoreVariant::Disk(store) = db.store() {
                    store.reset_io_counters();
                }
                let outcome = db.search(q, &params).unwrap();
                std::hint::black_box(outcome.results.len());
                if let nucdb::StoreVariant::Disk(store) = db.store() {
                    bytes_read += store.bytes_read();
                    records += store.records_read();
                }
            }
        });
        let n = queries.len() as f64;
        disk_table.row(vec![
            tag,
            bytes((bytes_read as f64 / n) as u64),
            format!("{:.0}", records as f64 / n),
            format!("{:.2}", took.as_secs_f64() * 1e3 / n),
        ]);
    }
    let _ = std::fs::remove_dir_all(&work);
    disk_table.print();

    println!(
        "\nDirect coding stores ~0.25 B/base (plus rare wildcard exceptions) against\n\
         1 B/base for ASCII, with identical search results. In the fully on-disk\n\
         configuration fine search reads ~4x fewer store bytes per query — the\n\
         mechanism behind the >20% retrieval-time improvement the CAFE work reports\n\
         on machines whose disks, unlike this one's page cache, make every byte count."
    );
}
