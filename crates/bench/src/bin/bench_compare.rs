//! **bench_compare — benchmark regression diff.**
//!
//! Compares two benchmark JSON files (a committed baseline and the
//! current `results/BENCH_*.json`) leaf by leaf and reports every
//! numeric drift beyond a threshold. Direction matters: wall times,
//! overheads and work counters regress *upward*; throughput and
//! speedup figures regress *downward*; structural fields (thread
//! counts, collection sizes) are compared for identity only and never
//! fail the run.
//!
//! ```text
//! bench_compare --baseline OLD.json --current NEW.json \
//!     [--threshold PCT] [--keys substr,substr] [--strict]
//! ```
//!
//! Default is a report: drifts print, exit status is 0. With
//! `--strict`, any regression beyond the threshold exits 1 —
//! `scripts/bench_compare.sh` uses that for the blocking decode-rate
//! check while keeping the wall-time report advisory (timing across
//! machines is noise; a decode-rate collapse on the same corpus shape
//! is not).

use std::process::ExitCode;

use nucdb_bench::Table;
use nucdb_obs::json::{self, Value};

/// How a numeric leaf regresses, decided from its key name.
#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// Bigger is worse: wall times, overheads, bytes read, ids decoded.
    HigherIsWorse,
    /// Bigger is better: queries/sec, ids/sec, speedups.
    HigherIsBetter,
    /// Workload shape (thread counts, corpus sizes): informational.
    Neutral,
}

fn direction(key: &str) -> Direction {
    const BETTER: &[&str] = &["per_sec", "speedup", "queries_per_sec", "ids_per_sec"];
    const WORSE: &[&str] = &[
        "wall_ms",
        "decode_ms",
        "overhead_pct",
        "postings_bytes_read",
        "ids_decoded",
        "blocks_decoded",
        "lists_fetched",
        "encoded_bytes",
        "mean",
        "p50",
        "p90",
        "p99",
        "max",
    ];
    if BETTER.iter().any(|s| key.contains(s)) {
        Direction::HigherIsBetter
    } else if WORSE.iter().any(|s| key.contains(s)) {
        Direction::HigherIsWorse
    } else {
        Direction::Neutral
    }
}

/// A numeric leaf with its dotted path (array rows keyed by their
/// discriminant field — codec/workload/threads — when present).
fn collect(value: &Value, path: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Num(n) => out.push((path.to_string(), *n)),
        Value::Obj(members) => {
            for (key, member) in members {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                collect(member, &child, out);
            }
        }
        Value::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let label = ["codec", "workload", "threads"]
                    .iter()
                    .filter_map(|k| {
                        item.get(k).map(|v| match v {
                            Value::Str(s) => s.clone(),
                            other => other.render(),
                        })
                    })
                    .collect::<Vec<_>>()
                    .join("/");
                let child = if label.is_empty() {
                    format!("{path}[{i}]")
                } else {
                    format!("{path}[{label}]")
                };
                collect(item, &child, out);
            }
        }
        _ => {}
    }
}

fn arg_value(argv: &[String], name: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == name)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

/// Blocking absolute budgets: `--budget path=max[,path=max...]` checks
/// the *current* file alone, no baseline needed. Unlike drift checks,
/// a budget is a design contract ("explain-off overhead stays under
/// 3%"), so exceeding it always fails the run.
fn check_budgets(current: &[(String, f64)], budgets: &str) -> ExitCode {
    let mut failed = false;
    for spec in budgets.split(',') {
        let Some((key, max)) = spec.split_once('=') else {
            eprintln!("bench_compare: bad --budget spec {spec:?} (want path=max)");
            return ExitCode::FAILURE;
        };
        let max: f64 = max.parse().unwrap_or_else(|_| {
            panic!("--budget {spec:?}: {max:?} is not a number");
        });
        let matches: Vec<&(String, f64)> = current
            .iter()
            .filter(|(path, _)| path.contains(key))
            .collect();
        if matches.is_empty() {
            eprintln!("bench_compare: budget key {key:?} matches no metric");
            failed = true;
            continue;
        }
        for (path, value) in matches {
            let verdict = if *value <= max { "ok" } else { "OVER BUDGET" };
            println!("budget {path}: {value:.3} <= {max} ... {verdict}");
            if *value > max {
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("bench_compare: failing (budget exceeded)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let usage = "usage: bench_compare --baseline FILE --current FILE \
                 [--threshold PCT] [--keys substr,substr] [--strict]\n\
                 \x20      bench_compare --current FILE --budget path=max[,path=max...]";
    let budgets = arg_value(&argv, "--budget");
    let Some(current_path) = arg_value(&argv, "--current") else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    if let Some(budgets) = budgets {
        let text = std::fs::read_to_string(&current_path)
            .unwrap_or_else(|e| panic!("read {current_path}: {e}"));
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("parse {current_path}: {e}"));
        let mut current = Vec::new();
        collect(&doc, "", &mut current);
        return check_budgets(&current, &budgets);
    }
    let Some(baseline_path) = arg_value(&argv, "--baseline") else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let threshold: f64 = arg_value(&argv, "--threshold")
        .map(|v| v.parse().expect("--threshold expects a percentage"))
        .unwrap_or(15.0);
    let keys: Vec<String> = arg_value(&argv, "--keys")
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let strict = argv.iter().any(|a| a == "--strict");

    let load = |path: &str| -> Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        json::parse(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
    };
    let mut baseline = Vec::new();
    let mut current = Vec::new();
    collect(&load(&baseline_path), "", &mut baseline);
    collect(&load(&current_path), "", &mut current);

    let mut table = Table::new(&["metric", "baseline", "current", "delta", "verdict"]);
    let mut rows_emitted = 0usize;
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (path, base) in &baseline {
        if !keys.is_empty() && !keys.iter().any(|k| path.contains(k.as_str())) {
            continue;
        }
        let Some((_, cur)) = current.iter().find(|(p, _)| p == path) else {
            rows_emitted += 1;
            table.row(vec![
                path.clone(),
                format!("{base:.3}"),
                "-".into(),
                "-".into(),
                "missing".into(),
            ]);
            continue;
        };
        compared += 1;
        let leaf = path.rsplit('.').next().unwrap_or(path);
        let dir = direction(leaf);
        let delta_pct = if *base != 0.0 {
            (cur / base - 1.0) * 100.0
        } else if *cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        let regressed = match dir {
            Direction::HigherIsWorse => delta_pct > threshold,
            Direction::HigherIsBetter => delta_pct < -threshold,
            Direction::Neutral => false,
        };
        let verdict = if regressed {
            regressions += 1;
            "REGRESSION"
        } else if dir == Direction::Neutral {
            if (cur - base).abs() > f64::EPSILON {
                "changed"
            } else {
                "ok"
            }
        } else if delta_pct.abs() > threshold {
            "improved"
        } else {
            "ok"
        };
        // Identical values are the common case when the current file is
        // the committed one; keep the table to what moved or broke.
        if verdict != "ok" || delta_pct.abs() > 0.01 {
            rows_emitted += 1;
            table.row(vec![
                path.clone(),
                format!("{base:.3}"),
                format!("{cur:.3}"),
                format!("{delta_pct:+.1}%"),
                verdict.to_string(),
            ]);
        }
    }
    if rows_emitted == 0 {
        println!(
            "bench_compare: {compared} metrics compared, all within \
             {threshold}% of baseline"
        );
    } else {
        table.print();
        println!(
            "\nbench_compare: {compared} metrics compared, {regressions} \
             regression(s) beyond {threshold}%"
        );
    }
    if strict && regressions > 0 {
        eprintln!("bench_compare: failing (--strict)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
