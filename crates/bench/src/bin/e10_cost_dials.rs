//! **E10 — Coarse-search cost dials: query stride and accumulator
//! limiting.**
//!
//! Two bounded-resource techniques from the CAFE/inverted-file line,
//! ablated against the default configuration:
//!
//! * *query stride* — look up only every s-th query interval
//!   (overlapping intervals are redundant, so lookups shrink ~s-fold);
//! * *accumulator limiting* — cap how many records the coarse stage may
//!   track (bounded memory; hits on records beyond the cap are dropped).

use nucdb::{recall_at, DbConfig, SearchParams};
use nucdb_bench::{banner, collection, database, family_queries, family_relevant, time, Table};

fn main() {
    banner("E10", "coarse cost dials: query stride / accumulator limit");
    let coll = collection(0xE10, 4_000_000);
    let db = database(&coll, &DbConfig::default());
    let queries = family_queries(&coll, 0.6, 0.06);
    println!("collection: {} records", coll.records.len());

    let mut table = Table::new(&[
        "configuration",
        "lookups",
        "postings",
        "query ms",
        "family recall@10",
    ]);

    let mut run = |label: String, params: &SearchParams| {
        let mut lookups = 0u64;
        let mut postings = 0u64;
        let mut recall = 0.0;
        let mut total = std::time::Duration::ZERO;
        for (f, query) in &queries {
            let (outcome, took) = time(|| db.search(query, params).unwrap());
            total += took;
            lookups += outcome.stats.intervals_looked_up;
            postings += outcome.stats.postings_decoded;
            let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
            recall += recall_at(&ranked, &family_relevant(&coll, *f), 10);
        }
        let n = queries.len() as f64;
        table.row(vec![
            label,
            format!("{:.0}", lookups as f64 / n),
            format!("{:.0}", postings as f64 / n),
            format!("{:.2}", total.as_secs_f64() * 1e3 / n),
            format!("{:.3}", recall / n),
        ]);
    };

    for stride in [1usize, 2, 4, 8, 16] {
        let params = SearchParams {
            query_stride: stride,
            ..SearchParams::default()
        };
        run(format!("stride {stride}"), &params);
    }
    for limit in [None, Some(10_000), Some(1_000), Some(100), Some(30)] {
        let params = SearchParams {
            max_accumulators: limit,
            ..SearchParams::default()
        };
        run(
            limit.map_or("accumulators unlimited".to_string(), |l| {
                format!("accumulators {l}")
            }),
            &params,
        );
    }
    table.print();
    println!(
        "\nStride divides lookups (and postings volume) nearly proportionally with\n\
         little recall cost until the sampled intervals get too sparse to cover the\n\
         homologous region. Accumulator limits below the collection's active-record\n\
         count start dropping true answers whose first hit arrives late."
    );
}
