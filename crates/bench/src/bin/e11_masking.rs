//! **E11 — Query-side low-complexity masking.**
//!
//! The complement of index stopping (E4): stopping protects the *index*
//! from repeats, DUST-style masking protects the *query path*. Queries
//! here are family fragments contaminated with a repeat segment drawn
//! from the collection's own repeat library — the worst case, since the
//! contamination hits every repeat-bearing record. Masked vs. unmasked:
//! postings volume, query time, and recall.

use nucdb::{recall_at, DbConfig, SearchParams};
use nucdb_bench::{banner, bytes, database, family_relevant, time, Table};
use nucdb_seq::random::{splice_repeat, CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::{DnaSeq, DustParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    banner("E11", "query masking vs repeat contamination");
    let spec = CollectionSpec {
        repeat_prob: 0.3,
        repeat_families: 4,
        ..CollectionSpec::sized(0xE11, 4_000_000)
    };
    let coll = SyntheticCollection::generate(&spec);
    let db = database(&coll, &DbConfig::default());
    println!(
        "collection: {} records (30% carry repeats)",
        coll.records.len()
    );

    // Contaminated queries: a family fragment with a 120-base repeat
    // segment appended, tiling a unit from the collection's own repeat
    // library — so the contamination genuinely hits the repeat-bearing
    // records, as a real low-complexity query region hits real genomes.
    let mut rng = StdRng::seed_from_u64(0xE11);
    let queries: Vec<(usize, DnaSeq)> = (0..coll.families.len())
        .map(|f| {
            let clean = coll.query_for_family(f, 0.7, &MutationModel::standard(0.05));
            let unit = &coll.repeat_units[f % coll.repeat_units.len()];
            // Append contamination rather than overwrite, so the
            // homologous signal is intact in both configurations.
            let mut seq = clean.clone();
            let repeat = splice_repeat(
                &DnaSeq::from_ascii(&[b'C'; 120]).unwrap(),
                unit,
                120..121,
                &mut rng,
            );
            seq.extend_from(&repeat);
            (f, seq)
        })
        .collect();

    let mut table = Table::new(&[
        "configuration",
        "postings/query",
        "hits/query",
        "query ms",
        "family recall@10",
    ]);

    for (label, mask) in [
        ("unmasked", None),
        ("dust masked", Some(DustParams::default())),
    ] {
        let params = SearchParams {
            mask,
            ..SearchParams::default()
        };
        let mut postings = 0u64;
        let mut hits = 0u64;
        let mut recall = 0.0;
        let mut total = std::time::Duration::ZERO;
        for (f, query) in &queries {
            let (outcome, took) = time(|| db.search(query, &params).unwrap());
            total += took;
            postings += outcome.stats.postings_decoded;
            hits += outcome.stats.total_hits;
            let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
            recall += recall_at(&ranked, &family_relevant(&coll, *f), 10);
        }
        let n = queries.len() as f64;
        table.row(vec![
            label.to_string(),
            bytes((postings as f64 / n) as u64),
            bytes((hits as f64 / n) as u64),
            format!("{:.2}", total.as_secs_f64() * 1e3 / n),
            format!("{:.3}", recall / n),
        ]);
    }
    table.print();
    println!(
        "\nThe repeat segment's intervals hit every repeat-bearing record, multiplying\n\
         postings volume and accumulator work for zero retrieval value; masking removes\n\
         them from seeding while the homologous intervals keep recall intact."
    );
}
