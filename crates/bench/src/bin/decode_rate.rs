//! **BENCH — postings decode rate, bit-serial vs block-parallel.**
//!
//! The NUCIDX04 block tier exists for one reason: the bit-serial Golomb
//! decoder walks the list one bit at a time, while the block decoder
//! unpacks 32 fixed-width lanes in straight-line code the compiler can
//! vectorise. This microbenchmark isolates that difference: the same
//! postings lists (from a reference index over the standard collection)
//! are decoded repeatedly under the paper codec and the block codec,
//! and the headline number is ids/second for each, plus the ratio.
//!
//! CI runs this with a reduced collection via `DECODE_RATE_BASES`;
//! results land in `results/BENCH_decode.json` next to the other
//! benchmark artifacts.

use std::time::{Duration, Instant};

use nucdb_bench::json::Value;
use nucdb_bench::{banner, bytes, collection, results_path, Table};
use nucdb_index::{
    decode_postings_with, encode_postings, Granularity, IndexBuilder, IndexParams, ListCodec,
};

const REPEATS: usize = 5;

fn main() {
    banner(
        "BENCH",
        "postings decode rate: bit-serial vs block-parallel",
    );
    let size: usize = std::env::var("DECODE_RATE_BASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let coll = collection(0xDEC0DE, size);
    let mut builder = IndexBuilder::new(IndexParams::new(8));
    for r in &coll.records {
        builder.add_record(&r.seq.representative_bases());
    }
    let reference = builder.finish();
    let lists = reference.decode_all().expect("reference index decodes");
    let num_records = reference.num_records();
    let lens = reference.record_lens().to_vec();
    let total_ids: u64 = lists.iter().map(|(_, l)| l.df() as u64).sum();
    println!(
        "postings data: {} lists, {} ids ({} bases)",
        bytes(lists.len() as u64),
        bytes(total_ids),
        bytes(size as u64)
    );

    let mut table = Table::new(&["codec", "encoded B", "decode ms (best)", "M ids/s"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut rates = Vec::new();
    for codec in [ListCodec::Paper, ListCodec::Block] {
        let encoded: Vec<Vec<u8>> = lists
            .iter()
            .map(|(_, list)| encode_postings(list, num_records, &lens, codec, Granularity::Offsets))
            .collect();
        let encoded_bytes: u64 = encoded.iter().map(|b| b.len() as u64).sum();

        // Best-of-REPEATS full-corpus decode through the streaming path
        // (the one coarse search uses); the visitor only folds, so the
        // measured work is the decoder, not downstream bookkeeping.
        let mut best = Duration::MAX;
        let mut sink = 0u64;
        for _ in 0..REPEATS {
            let start = Instant::now();
            let mut acc = 0u64;
            for ((_, list), blob) in lists.iter().zip(&encoded) {
                decode_postings_with(
                    blob,
                    list.df() as u32,
                    num_records,
                    &lens,
                    codec,
                    |record, offset| acc = acc.wrapping_add(record as u64 ^ offset as u64),
                )
                .expect("decode");
            }
            best = best.min(start.elapsed());
            sink = sink.wrapping_add(acc);
        }
        std::hint::black_box(sink);

        let ids_per_sec = total_ids as f64 / best.as_secs_f64();
        rates.push(ids_per_sec);
        table.row(vec![
            codec.name().to_string(),
            bytes(encoded_bytes),
            format!("{:.2}", best.as_secs_f64() * 1e3),
            format!("{:.1}", ids_per_sec / 1e6),
        ]);
        rows.push(Value::Obj(vec![
            ("codec", Value::Str(codec.name().into())),
            ("encoded_bytes", Value::Int(encoded_bytes)),
            ("decode_ms_best", Value::Num(best.as_secs_f64() * 1e3)),
            ("ids_per_sec", Value::Num(ids_per_sec)),
        ]));
    }
    table.print();
    let ratio = rates[1] / rates[0];
    println!("\nblock decode rate is {ratio:.1}x the bit-serial Golomb decoder");

    let out = Value::Obj(vec![
        ("experiment", Value::Str("decode_rate".into())),
        (
            "description",
            Value::Str(
                "full-corpus postings decode through the streaming path: bit-serial \
                 Golomb (paper) vs 128-entry bitpacked blocks (NUCIDX04)"
                    .into(),
            ),
        ),
        ("collection_bases", Value::Int(size as u64)),
        ("total_ids", Value::Int(total_ids)),
        ("repeats_best_of", Value::Int(REPEATS as u64)),
        ("codecs", Value::Arr(rows)),
        ("block_vs_bit_serial_speedup", Value::Num(ratio)),
    ]);
    let path = results_path("BENCH_decode.json");
    std::fs::write(&path, out.render() + "\n").expect("write BENCH_decode.json");
    println!("wrote {}", path.display());
}
