//! **BENCH — live ingestion throughput: insert, flush, compact.**
//!
//! The live-ingestion path trades the offline build's single pass for
//! incremental availability: records inserted into the memtable are
//! searchable immediately and durable at the next flush. This benchmark
//! measures what that costs end to end: sustained insert throughput
//! (records/s and bases/s with periodic flushes in the loop), the flush
//! latency distribution, and the compaction work needed to fold the
//! resulting segments back down to quiescence.
//!
//! CI runs this with a reduced collection via `INGEST_BASES`; results
//! land in `results/BENCH_ingest.json` next to the other artifacts.

use std::time::Instant;

use nucdb::{DbConfig, LiveDatabase, LiveOptions};
use nucdb_bench::json::Value;
use nucdb_bench::{banner, bytes, collection, results_path, Table};

/// Records per insert_batch call (one HTTP request's worth).
const BATCH: usize = 64;
/// Explicit flush cadence, in records.
const FLUSH_EVERY: usize = 512;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    banner("BENCH", "live ingestion: insert, flush, compact");
    let size: usize = std::env::var("INGEST_BASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let coll = collection(0x1463E57, size);
    let records: Vec<(String, nucdb_seq::DnaSeq)> = coll
        .records
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect();
    let total_records = records.len() as u64;
    let total_bases: u64 = records.iter().map(|(_, s)| s.len() as u64).sum();
    println!(
        "collection: {} records, {} bases",
        total_records,
        bytes(total_bases)
    );

    let dir = std::env::temp_dir().join(format!("nucdb_bench_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let live = LiveDatabase::create(
        &dir,
        &DbConfig::default(),
        LiveOptions {
            // Flush on our own cadence so flush latency is measured, not
            // hidden inside whichever insert happens to trip the limit.
            memtable_max_records: usize::MAX,
            ..LiveOptions::default()
        },
    )
    .expect("create live database");

    // Ingest loop: batched inserts with periodic timed flushes — the
    // pattern a live archive sees from a deposit feed.
    let mut flush_ms: Vec<f64> = Vec::new();
    let mut since_flush = 0usize;
    let ingest_start = Instant::now();
    for chunk in records.chunks(BATCH) {
        live.insert_batch(chunk.to_vec()).expect("insert");
        since_flush += chunk.len();
        if since_flush >= FLUSH_EVERY {
            since_flush = 0;
            let t0 = Instant::now();
            live.flush().expect("flush");
            flush_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let t0 = Instant::now();
    live.flush().expect("final flush");
    flush_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    let ingest_secs = ingest_start.elapsed().as_secs_f64();

    let records_per_sec = total_records as f64 / ingest_secs;
    let bases_per_sec = total_bases as f64 / ingest_secs;
    let segments_after_ingest = live.status().segments.len() as u64;

    // Compaction to quiescence, timed as one settling pass.
    let compact_start = Instant::now();
    let runs = live.compact_all().expect("compact");
    let compact_secs = compact_start.elapsed().as_secs_f64();
    let compaction_runs = runs.len() as u64;
    let compaction_input: u64 = runs.iter().map(|r| r.input_bytes).sum();
    let compaction_output: u64 = runs.iter().map(|r| r.output_bytes).sum();
    let segments_final = live.status().segments.len() as u64;

    flush_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p90, p99) = (
        percentile(&flush_ms, 50.0),
        percentile(&flush_ms, 90.0),
        percentile(&flush_ms, 99.0),
    );
    let flush_max = flush_ms.last().copied().unwrap_or(0.0);

    let mut table = Table::new(&["phase", "value"]);
    table.row(vec![
        "insert throughput".into(),
        format!(
            "{records_per_sec:.0} records/s ({:.2} Mbases/s)",
            bases_per_sec / 1e6
        ),
    ]);
    table.row(vec![
        "flush latency".into(),
        format!(
            "p50 {p50:.1} ms, p90 {p90:.1} ms, p99 {p99:.1} ms, max {flush_max:.1} ms \
             ({} flushes)",
            flush_ms.len()
        ),
    ]);
    table.row(vec![
        "compaction".into(),
        format!(
            "{compaction_runs} runs, {} in -> {} out, {:.1} s; {} -> {} segments",
            bytes(compaction_input),
            bytes(compaction_output),
            compact_secs,
            segments_after_ingest,
            segments_final,
        ),
    ]);
    table.print();

    let out = Value::Obj(vec![
        ("experiment", Value::Str("ingest_throughput".into())),
        (
            "description",
            Value::Str(
                "live ingestion over the standard collection: batched inserts with \
                 periodic flushes, then compaction to quiescence"
                    .into(),
            ),
        ),
        ("collection_bases", Value::Int(total_bases)),
        ("records", Value::Int(total_records)),
        ("batch_records", Value::Int(BATCH as u64)),
        ("flush_every_records", Value::Int(FLUSH_EVERY as u64)),
        ("ingest_seconds", Value::Num(ingest_secs)),
        ("records_per_sec", Value::Num(records_per_sec)),
        ("bases_per_sec", Value::Num(bases_per_sec)),
        ("flushes", Value::Int(flush_ms.len() as u64)),
        ("flush_ms_p50", Value::Num(p50)),
        ("flush_ms_p90", Value::Num(p90)),
        ("flush_ms_p99", Value::Num(p99)),
        ("flush_ms_max", Value::Num(flush_max)),
        ("compaction_runs", Value::Int(compaction_runs)),
        ("compaction_input_bytes", Value::Int(compaction_input)),
        ("compaction_output_bytes", Value::Int(compaction_output)),
        ("compaction_seconds", Value::Num(compact_secs)),
        ("segments_after_ingest", Value::Int(segments_after_ingest)),
        ("segments_final", Value::Int(segments_final)),
    ]);
    let path = results_path("BENCH_ingest.json");
    std::fs::write(&path, out.render() + "\n").expect("write BENCH_ingest.json");
    println!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&dir);
}
