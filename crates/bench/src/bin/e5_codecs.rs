//! **E5 — Integer-coding comparison on real postings data.**
//!
//! The compression layer exists because disk transfer dominates query
//! cost; the right code is the one that minimises bytes without making
//! decode the new bottleneck. This harness encodes the same postings
//! lists (from a reference index over the standard collection) under each
//! scheme and reports encoded size and decode throughput.

use nucdb_bench::{banner, bytes, collection, time, Table};
use nucdb_index::{
    decode_postings, encode_postings, Granularity, IndexBuilder, IndexParams, ListCodec,
};

fn main() {
    banner("E5", "postings codec comparison: size and decode speed");
    let coll = collection(0xE5, 4_000_000);
    let mut builder = IndexBuilder::new(IndexParams::new(8));
    for r in &coll.records {
        builder.add_record(&r.seq.representative_bases());
    }
    let reference = builder.finish();
    let lists = reference.decode_all().expect("reference index decodes");
    let num_records = reference.num_records();
    let lens = reference.record_lens().to_vec();
    let total_postings: u64 = lists.iter().map(|(_, l)| l.df() as u64).sum();
    let total_offsets: u64 = lists
        .iter()
        .map(|(_, l)| l.total_occurrences() as u64)
        .sum();
    println!(
        "postings data: {} lists, {} entries, {} offsets",
        bytes(lists.len() as u64),
        bytes(total_postings),
        bytes(total_offsets)
    );

    let mut table = Table::new(&[
        "codec",
        "encoded B",
        "bits/posting",
        "encode ms",
        "decode ms",
        "Mpostings/s",
    ]);

    for codec in [
        ListCodec::Paper,
        ListCodec::Interp,
        ListCodec::Gamma,
        ListCodec::Delta,
        ListCodec::VByte,
        ListCodec::Fixed,
        ListCodec::Block,
    ] {
        let (encoded, enc_time) = time(|| {
            lists
                .iter()
                .map(|(_, list)| {
                    encode_postings(list, num_records, &lens, codec, Granularity::Offsets)
                })
                .collect::<Vec<_>>()
        });
        let encoded_bytes: u64 = encoded.iter().map(|b| b.len() as u64).sum();

        let (ok, dec_time) = time(|| {
            let mut ok = true;
            for ((_, list), blob) in lists.iter().zip(&encoded) {
                let decoded = decode_postings(blob, list.df() as u32, num_records, &lens, codec)
                    .expect("round trip");
                ok &= &decoded == list;
            }
            ok
        });
        assert!(ok, "decode mismatch under {}", codec.name());

        let decoded_per_sec = total_postings as f64 / dec_time.as_secs_f64() / 1e6;
        table.row(vec![
            codec.name().to_string(),
            bytes(encoded_bytes),
            format!("{:.2}", encoded_bytes as f64 * 8.0 / total_postings as f64),
            format!("{:.0}", enc_time.as_secs_f64() * 1e3),
            format!("{:.0}", dec_time.as_secs_f64() * 1e3),
            format!("{:.1}", decoded_per_sec),
        ]);
    }
    table.print();
    println!(
        "\nThe fitted Golomb layout (paper) beats every per-gap alternative of its era;\n\
         binary interpolative coding (published the same year, mainstream a few years\n\
         later) edges it out slightly. vbyte trades size for decode speed; fixed-width\n\
         is the uncompressed baseline. block-128 (NUCIDX04) spends extra space on\n\
         per-block skip entries and CRCs to buy word-parallel decode and block\n\
         skipping — the fast tier, not the space-optimal one."
    );
}
