//! **BENCH — shard scaling: scatter-gather cost across shard counts.**
//!
//! Sharded search fans a query's coarse phase out across per-shard
//! workers, merges the global top-C, and runs fine search only on the
//! global winners. This benchmark builds the same collection at several
//! shard counts and measures what sharding costs: build wall time,
//! query wall time, and — because wall time on a loaded CI box lies —
//! the *work counters* that do not: per-shard compressed postings bytes
//! read and postings entries decoded (from [`nucdb::ShardWork`]), plus
//! the pre-merge candidate volume each shard surfaces.
//!
//! Every configuration's answers are checked bit-identical to the
//! 1-shard (joint) answers before its row is reported: a scaling number
//! for a wrong answer would be worthless.
//!
//! CI runs this with a reduced collection via `SHARD_BASES`; results
//! land in `results/BENCH_shard.json` next to the other artifacts.

use std::collections::BTreeMap;
use std::time::Instant;

use nucdb::{DbConfig, SearchParams, ShardSet, ShardSetConfig};
use nucdb_bench::json::Value;
use nucdb_bench::{banner, bytes, collection, results_path, Table};
use nucdb_obs::MetricsRegistry;
use nucdb_seq::random::MutationModel;

/// Queries per run (one per planted family, up to this many).
const QUERIES: usize = 8;
/// Repetitions of the query set per configuration.
const REPEAT: usize = 3;
/// Shard counts compared (1 = the joint baseline).
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    banner("BENCH", "shard scaling: scatter-gather work and wall time");
    let size: usize = std::env::var("SHARD_BASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000);
    let coll = collection(0x54A2D, size);
    let records: Vec<(String, nucdb_seq::DnaSeq)> = coll
        .records
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect();
    let total_bases: u64 = records.iter().map(|(_, s)| s.len() as u64).sum();
    println!(
        "collection: {} records, {} bases",
        records.len(),
        bytes(total_bases)
    );

    let queries: Vec<nucdb_seq::DnaSeq> = (0..coll.families.len().min(QUERIES))
        .map(|f| coll.query_for_family(f, 0.5, &MutationModel::standard(0.06)))
        .collect();
    let params = SearchParams::default();

    let root_base = std::env::temp_dir().join(format!("nucdb_bench_shard_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root_base);

    let mut table = Table::new(&[
        "shards",
        "build s",
        "query ms/q",
        "postings MB read",
        "ids decoded",
        "candidates",
    ]);
    let mut config_values = Vec::new();
    // The 1-shard answers are the identity baseline for every other row.
    let mut baseline: Option<Vec<Vec<(String, i32)>>> = None;

    for &num_shards in &SHARD_COUNTS {
        let root = root_base.join(format!("n{num_shards}"));
        let t_build = Instant::now();
        nucdb::build_sharded_root(&root, records.clone(), num_shards, &DbConfig::default())
            .expect("build sharded root");
        let build_secs = t_build.elapsed().as_secs_f64();

        let registry = MetricsRegistry::new();
        let set = ShardSet::open_root(&root, ShardSetConfig::default(), &registry)
            .expect("open sharded root");

        // Aggregate work per shard across every query and repetition.
        let mut work: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        let mut answers: Vec<Vec<(String, i32)>> = Vec::new();
        let t_query = Instant::now();
        for rep in 0..REPEAT {
            for query in &queries {
                let outcome = set.search(query, &params).expect("sharded search");
                assert!(outcome.coverage.is_full(), "bench shards must all answer");
                for w in &outcome.work {
                    let entry = work.entry(w.shard.clone()).or_default();
                    entry.0 += w.postings_bytes_read;
                    entry.1 += w.ids_decoded;
                    entry.2 += w.candidates;
                }
                if rep == 0 {
                    answers.push(
                        outcome
                            .results
                            .iter()
                            .map(|r| (r.id.clone(), r.score))
                            .collect(),
                    );
                }
            }
        }
        let query_secs = t_query.elapsed().as_secs_f64();
        let evaluations = (queries.len() * REPEAT) as f64;

        match &baseline {
            None => baseline = Some(answers),
            Some(expected) => assert_eq!(
                expected, &answers,
                "{num_shards}-shard answers diverge from the joint build"
            ),
        }

        let postings_total: u64 = work.values().map(|w| w.0).sum();
        let decoded_total: u64 = work.values().map(|w| w.1).sum();
        let candidates_total: u64 = work.values().map(|w| w.2).sum();
        table.row(vec![
            num_shards.to_string(),
            format!("{build_secs:.2}"),
            format!("{:.2}", query_secs * 1e3 / evaluations),
            format!("{:.2}", postings_total as f64 / 1e6),
            decoded_total.to_string(),
            candidates_total.to_string(),
        ]);

        let per_shard = work
            .iter()
            .map(|(shard, (bytes_read, decoded, candidates))| {
                Value::Obj(vec![
                    ("shard", Value::Str(shard.clone())),
                    ("postings_bytes_read", Value::Int(*bytes_read)),
                    ("ids_decoded", Value::Int(*decoded)),
                    ("candidates", Value::Int(*candidates)),
                ])
            })
            .collect();
        config_values.push(Value::Obj(vec![
            ("shards", Value::Int(num_shards as u64)),
            ("build_seconds", Value::Num(build_secs)),
            ("query_seconds_total", Value::Num(query_secs)),
            (
                "query_ms_per_query",
                Value::Num(query_secs * 1e3 / evaluations),
            ),
            ("postings_bytes_read", Value::Int(postings_total)),
            ("ids_decoded", Value::Int(decoded_total)),
            ("candidates", Value::Int(candidates_total)),
            ("per_shard", Value::Arr(per_shard)),
        ]));
    }
    table.print();
    println!("all shard counts bit-identical to the joint answers");

    let out = Value::Obj(vec![
        ("experiment", Value::Str("shard_scaling".into())),
        (
            "description",
            Value::Str(
                "scatter-gather search at several shard counts over the same \
                 collection: build and query wall time plus per-shard work \
                 counters (postings bytes read, postings decoded, pre-merge \
                 candidates); every row verified bit-identical to 1 shard"
                    .into(),
            ),
        ),
        ("collection_bases", Value::Int(total_bases)),
        ("records", Value::Int(records.len() as u64)),
        ("queries", Value::Int(queries.len() as u64)),
        ("repeat", Value::Int(REPEAT as u64)),
        ("configs", Value::Arr(config_values)),
    ]);
    let path = results_path("BENCH_shard.json");
    std::fs::write(&path, out.render() + "\n").expect("write BENCH_shard.json");
    println!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&root_base);
}
