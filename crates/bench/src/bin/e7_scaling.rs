//! **E7 — Scalability: query cost growth with collection size.**
//!
//! The abstract's motivation: "with increasing database size, these
//! \[exhaustive\] algorithms will become prohibitively expensive." This
//! harness doubles the collection from 1 MB to 16 MB and reports
//! per-query time for partitioned search vs. exhaustive Smith–Waterman,
//! plus the volume of postings data the index actually touches (the
//! disk-read proxy).

use nucdb::{exhaustive_sw, DbConfig, SearchParams};
use nucdb_bench::{banner, bytes, collection, database, family_queries, time, Table};

fn main() {
    banner("E7", "query time growth with collection size");
    let params = SearchParams::default();
    let scheme = params.scheme;

    let mut table = Table::new(&[
        "collection",
        "records",
        "part ms",
        "postings fetched",
        "sw ms",
        "sw/part",
    ]);

    for size in [1usize, 2, 4, 8, 16] {
        let total = size * 1_000_000;
        let coll = collection(0xE7, total);
        let db = database(&coll, &DbConfig::default());
        let (f, query) = family_queries(&coll, 0.6, 0.05).into_iter().next().unwrap();
        let _ = f;
        let qb = query.representative_bases();

        // Warm once, then measure two repetitions of each mode.
        let _ = db.search(&query, &params).unwrap();
        let (outcome, part) = time(|| {
            let first = db.search(&query, &params).unwrap();
            let _second = db.search(&query, &params).unwrap();
            first
        });
        let part_ms = part.as_secs_f64() * 1e3 / 2.0;

        let (_, sw) = time(|| std::hint::black_box(exhaustive_sw(db.store(), &qb, &scheme)));
        let sw_ms = sw.as_secs_f64() * 1e3;

        table.row(vec![
            format!("{size} MB"),
            coll.records.len().to_string(),
            format!("{part_ms:.2}"),
            bytes(outcome.stats.postings_decoded),
            format!("{sw_ms:.0}"),
            format!("{:.0}x", sw_ms / part_ms),
        ]);
    }
    table.print();
    println!(
        "\nExhaustive time doubles with the collection; partitioned time grows only with\n\
         the query's postings volume (sublinear here), so the gap widens — the paper's\n\
         case that indexing is what keeps query evaluation viable as databases grow."
    );
}
