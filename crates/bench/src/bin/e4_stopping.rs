//! **E4 — Index stopping: size, speed, and accuracy vs. the threshold.**
//!
//! Frequent intervals carry little information but much index space and
//! decode time. This harness sweeps the stopping threshold (maximum
//! document frequency as a fraction of the collection) and reports index
//! size, mean query time, and planted-family recall.

use nucdb::{recall_at, DbConfig, IndexVariant, SearchParams};
use nucdb_bench::{
    banner, bytes, collection, database, family_queries, family_relevant, time, Table,
};
use nucdb_index::{IndexParams, StopPolicy};

fn main() {
    banner("E4", "index stopping threshold: size / time / accuracy");
    let coll = collection(0xE4, 4_000_000);
    let queries = family_queries(&coll, 0.6, 0.06);
    println!("collection: {} records", coll.records.len());

    let mut table = Table::new(&[
        "stop df <=",
        "distinct",
        "postings",
        "index B",
        "query ms",
        "family recall@10",
    ]);

    // k = 10 keeps the interval vocabulary unsaturated (mean df ~0.1% of
    // records) so the repeat families' lists stand out as the heavy tail
    // the thresholds step down through. At the end the threshold cuts
    // into ordinary intervals and recall pays.
    let fractions: &[Option<f64>] = &[
        None,
        Some(0.04),
        Some(0.02),
        Some(0.01),
        Some(0.003),
        Some(0.0008),
    ];
    for &frac in fractions {
        let mut index = IndexParams::new(10);
        index.stopping = frac.map(StopPolicy::DfFraction);
        let db = database(
            &coll,
            &DbConfig {
                index,
                ..DbConfig::default()
            },
        );
        let stats = match db.index() {
            IndexVariant::Memory(i) => i.stats(),
            _ => unreachable!("e4 builds in-memory indexes only"),
        };

        let params = SearchParams::default();
        let mut recall = 0.0;
        let mut total = std::time::Duration::ZERO;
        for (f, query) in &queries {
            let (outcome, took) = time(|| db.search(query, &params).unwrap());
            total += took;
            let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
            recall += recall_at(&ranked, &family_relevant(&coll, *f), 10);
        }
        let n = queries.len() as f64;
        table.row(vec![
            frac.map_or("none".to_string(), |f| format!("{:.1}%", f * 100.0)),
            bytes(stats.distinct_intervals),
            bytes(stats.postings_entries),
            bytes(stats.total_bytes()),
            format!("{:.2}", total.as_secs_f64() * 1e3 / n),
            format!("{:.3}", recall / n),
        ]);
    }
    table.print();
    println!(
        "\nModerate stopping removes the longest lists — most of the postings volume —\n\
         with little accuracy cost; aggressive stopping eventually removes the evidence\n\
         coarse ranking needs."
    );
}
