//! **E2 — Query evaluation time: partitioned search vs. exhaustive.**
//!
//! Reproduces the abstract's headline claim ("queries can be evaluated
//! several times more quickly than with exhaustive search techniques"):
//! across collection sizes, mean per-query time for partitioned search
//! against full Smith–Waterman, the FASTA-style scanner and the
//! BLAST-style scanner.

use nucdb::{exhaustive_blast, exhaustive_fasta, exhaustive_sw, DbConfig, SearchParams};
use nucdb_align::{BlastParams, FastaParams};
use nucdb_bench::json::Value;
use nucdb_bench::{
    banner, collection, database, family_queries, latency_block, results_path, time, Table,
};
use nucdb_obs::{HistogramSnapshot, MetricsRegistry, ValueSnapshot};

fn main() {
    banner("E2", "per-query time: partitioned vs exhaustive search");
    let sizes: &[usize] = &[1_000_000, 2_000_000, 4_000_000, 8_000_000];
    let params = SearchParams::default();
    let scheme = params.scheme;

    let mut table = Table::new(&[
        "collection",
        "records",
        "part ms",
        "sw ms",
        "fasta ms",
        "blast ms",
        "sw/part",
        "fasta/part",
        "blast/part",
    ]);
    let mut json_rows: Vec<Value> = Vec::new();

    for &size in sizes {
        let coll = collection(0xE2, size);
        let mut db = database(&coll, &DbConfig::default());
        // Per-query latency percentiles for the partitioned runs come from
        // the engine's own metrics; the registry is private to this size.
        let registry = MetricsRegistry::new();
        db.bind_metrics(&registry);
        // Three family queries, ~300 bases each (typical 1996 submission).
        let queries: Vec<_> = family_queries(&coll, 0.6, 0.05)
            .into_iter()
            .take(3)
            .map(|(_, q)| q.representative_bases())
            .collect();
        let dna_queries: Vec<_> = family_queries(&coll, 0.6, 0.05)
            .into_iter()
            .take(3)
            .map(|(_, q)| q)
            .collect();

        let (_, part) = time(|| {
            for q in &dna_queries {
                let outcome = db.search(q, &params).unwrap();
                std::hint::black_box(outcome.results.len());
            }
        });
        let latency = match registry.snapshot().get("nucdb_query_latency_ns") {
            Some(ValueSnapshot::Histogram(hist)) => hist.clone(),
            _ => HistogramSnapshot::empty(),
        };
        let (_, sw) = time(|| {
            for q in &queries {
                std::hint::black_box(exhaustive_sw(db.store(), q, &scheme).len());
            }
        });
        let (_, fasta) = time(|| {
            for q in &queries {
                std::hint::black_box(
                    exhaustive_fasta(db.store(), q, &FastaParams::default(), &scheme).len(),
                );
            }
        });
        let (_, blast) = time(|| {
            for q in &queries {
                std::hint::black_box(
                    exhaustive_blast(db.store(), q, &BlastParams::default(), &scheme).len(),
                );
            }
        });

        let n = queries.len() as f64;
        let per = |d: std::time::Duration| d.as_secs_f64() * 1e3 / n;
        table.row(vec![
            format!("{} MB", size / 1_000_000),
            coll.records.len().to_string(),
            format!("{:.2}", per(part)),
            format!("{:.1}", per(sw)),
            format!("{:.1}", per(fasta)),
            format!("{:.1}", per(blast)),
            format!("{:.1}x", per(sw) / per(part)),
            format!("{:.1}x", per(fasta) / per(part)),
            format!("{:.1}x", per(blast) / per(part)),
        ]);
        json_rows.push(Value::Obj(vec![
            ("collection_bases", Value::Int(size as u64)),
            ("records", Value::Int(coll.records.len() as u64)),
            ("queries", Value::Int(queries.len() as u64)),
            ("partitioned_ms_per_query", Value::Num(per(part))),
            ("sw_ms_per_query", Value::Num(per(sw))),
            ("fasta_ms_per_query", Value::Num(per(fasta))),
            ("blast_ms_per_query", Value::Num(per(blast))),
            ("speedup_vs_sw", Value::Num(per(sw) / per(part))),
            ("speedup_vs_fasta", Value::Num(per(fasta) / per(part))),
            ("speedup_vs_blast", Value::Num(per(blast) / per(part))),
            ("latency_ns", latency_block(&latency)),
        ]));
    }
    table.print();
    let out = Value::Obj(vec![
        ("experiment", Value::Str("e2_speedup".into())),
        (
            "description",
            Value::Str("per-query time: partitioned vs exhaustive search".into()),
        ),
        ("rows", Value::Arr(json_rows)),
    ]);
    let path = results_path("e2_speedup.json");
    std::fs::write(&path, out.render() + "\n").expect("write e2_speedup.json");
    println!("\nwrote {}", path.display());
    println!(
        "\nPartitioned search reads only the query's interval lists and aligns a fixed\n\
         number of candidates, so its cost is near-flat in collection size while every\n\
         exhaustive scanner grows linearly — the speedup factors widen with size."
    );
}
