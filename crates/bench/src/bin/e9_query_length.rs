//! **E9 — Query-length sweep: cost and accuracy vs. query size.**
//!
//! Exhaustive Smith–Waterman scales with `query × collection`; the
//! partitioned path scales with the query's postings volume plus a fixed
//! fine stage. This harness queries with exact fragments of stored
//! records at doubling lengths and reports per-length time for both
//! paths, plus whether the source record comes back on top (it always
//! should — the fragment is an exact substring).

use nucdb::{exhaustive_sw, DbConfig, SearchParams};
use nucdb_bench::{banner, collection, database, time, Table};

fn main() {
    banner("E9", "query length: partitioned vs exhaustive cost");
    let coll = collection(0xE9, 4_000_000);
    let db = database(&coll, &DbConfig::default());
    let params = SearchParams::default();
    let scheme = params.scheme;

    // Source record: the longest record, so every fragment length fits.
    let (source, _) = (0..coll.records.len())
        .map(|i| (i, coll.records[i].seq.len()))
        .max_by_key(|&(_, len)| len)
        .unwrap();
    let source_seq = &coll.records[source].seq;
    println!(
        "collection: {} records; query source record {} ({} bases)",
        coll.records.len(),
        source,
        source_seq.len()
    );

    let mut table = Table::new(&[
        "query len",
        "part ms",
        "postings",
        "sw ms",
        "sw/part",
        "top = source",
    ]);

    let mut len = 64usize;
    while len <= source_seq.len().min(2048) {
        let query = source_seq.subseq(0..len);
        let qb = query.representative_bases();

        let _ = db.search(&query, &params).unwrap(); // warm
        let (outcome, part) = time(|| db.search(&query, &params).unwrap());
        let (sw_hits, sw) = time(|| exhaustive_sw(db.store(), &qb, &scheme));

        let part_ms = part.as_secs_f64() * 1e3;
        let sw_ms = sw.as_secs_f64() * 1e3;
        let top_ok = outcome.results.first().map(|r| r.record) == Some(source as u32)
            && sw_hits.first().map(|h| h.id) == Some(source as u32);
        table.row(vec![
            len.to_string(),
            format!("{part_ms:.2}"),
            outcome.stats.postings_decoded.to_string(),
            format!("{sw_ms:.0}"),
            format!("{:.0}x", sw_ms / part_ms),
            top_ok.to_string(),
        ]);
        len *= 2;
    }
    table.print();
    println!(
        "\nBoth paths grow with query length, but exhaustive time grows with\n\
         query x collection while partitioned time grows only with the query's\n\
         postings volume — the speedup holds across query sizes."
    );
}
