//! **E1 — Index size vs. interval length, compressed vs. uncompressed.**
//!
//! Reproduces the paper's index-size story ("by use of suitable
//! compression techniques the index size is held to an acceptable
//! level"): sweep the interval length `k` and compare the paper's
//! Golomb/gamma postings layout against the fixed-width (uncompressed)
//! layout, reporting index size as a fraction of the collection.

use nucdb_bench::{banner, bytes, collection, time, Table};
use nucdb_index::{IndexBuilder, IndexParams, ListCodec};

fn main() {
    banner(
        "E1",
        "index size vs interval length, compressed vs uncompressed",
    );
    let coll = collection(0xE1, 4_000_000);
    let bases: Vec<Vec<nucdb_seq::Base>> = coll
        .records
        .iter()
        .map(|r| r.seq.representative_bases())
        .collect();
    let collection_bytes: u64 = coll.total_bases() as u64; // 1 byte/base ASCII
    println!(
        "collection: {} records, {} bases",
        coll.records.len(),
        bytes(collection_bytes)
    );

    let mut table = Table::new(&[
        "k",
        "distinct",
        "postings",
        "compressed B",
        "fixed B",
        "ratio",
        "index/coll",
        "build ms",
    ]);

    for k in [6usize, 8, 10, 12] {
        let (paper, paper_time) = time(|| {
            let mut b = IndexBuilder::new(IndexParams::new(k));
            for r in &bases {
                b.add_record(r);
            }
            b.finish()
        });
        let fixed = {
            let mut b = IndexBuilder::new(IndexParams::new(k)).with_codec(ListCodec::Fixed);
            for r in &bases {
                b.add_record(r);
            }
            b.finish()
        };
        let stats = paper.stats();
        let fixed_bytes = fixed.stats().blob_bytes;
        table.row(vec![
            k.to_string(),
            bytes(stats.distinct_intervals),
            bytes(stats.postings_entries),
            bytes(stats.blob_bytes),
            bytes(fixed_bytes),
            format!("{:.3}", stats.blob_bytes as f64 / fixed_bytes as f64),
            format!("{:.3}", stats.index_to_collection_ratio()),
            format!("{:.0}", paper_time.as_secs_f64() * 1e3),
        ]);
    }
    table.print();
    println!(
        "\nratio = compressed/fixed postings bytes; index/coll = total index bytes per\n\
         collection byte (vocabulary included). The paper's claim is that the ratio\n\
         stays well below 1 and index/coll remains acceptable at useful k."
    );
}
