//! **E12 — Index granularity: offset-level vs. record-level postings.**
//!
//! The CAFE line evaluates how much the index should remember about each
//! interval occurrence. Offset-level postings enable frame ranking and
//! banded fine alignment; record-level postings store only `(record,
//! count)` — a far smaller index whose coarse stage is count-based and
//! whose fine stage must align whole records. Size, per-stage time, and
//! recall for both, on the same collection and queries.

use nucdb::{recall_at, DbConfig, FineMode, IndexVariant, RankingScheme, SearchParams};
use nucdb_bench::{
    banner, bytes, collection, database, family_queries, family_relevant, time, Table,
};
use nucdb_index::{Granularity, IndexParams};

fn main() {
    banner("E12", "index granularity: offsets vs records-only");
    let coll = collection(0xE12, 4_000_000);
    let queries = family_queries(&coll, 0.6, 0.06);
    println!("collection: {} records", coll.records.len());

    let mut table = Table::new(&[
        "granularity / config",
        "index B",
        "coarse ms",
        "fine ms",
        "query ms",
        "family recall@10",
    ]);

    let configs: Vec<(String, DbConfig, SearchParams)> = vec![
        (
            "offsets + frame + banded".to_string(),
            DbConfig::default(),
            SearchParams::default(),
        ),
        (
            "offsets + count + banded".to_string(),
            DbConfig::default(),
            SearchParams::default().with_ranking(RankingScheme::Count),
        ),
        (
            "records + count + full fine".to_string(),
            DbConfig {
                index: IndexParams::new(8).with_granularity(Granularity::Records),
                ..DbConfig::default()
            },
            SearchParams::default()
                .with_ranking(RankingScheme::Count)
                .with_fine(FineMode::Full),
        ),
        (
            "records + proportional + full fine".to_string(),
            DbConfig {
                index: IndexParams::new(8).with_granularity(Granularity::Records),
                ..DbConfig::default()
            },
            SearchParams::default()
                .with_ranking(RankingScheme::Proportional)
                .with_fine(FineMode::Full),
        ),
    ];

    for (label, config, params) in configs {
        let db = database(&coll, &config);
        let IndexVariant::Memory(index) = db.index() else {
            unreachable!()
        };
        let index_bytes = index.stats().total_bytes();

        let mut coarse_ns = 0u64;
        let mut fine_ns = 0u64;
        let mut recall = 0.0;
        let mut total = std::time::Duration::ZERO;
        for (f, query) in &queries {
            let (outcome, took) = time(|| db.search(query, &params).unwrap());
            total += took;
            coarse_ns += outcome.stats.coarse_nanos;
            fine_ns += outcome.stats.fine_nanos;
            let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
            recall += recall_at(&ranked, &family_relevant(&coll, *f), 10);
        }
        let n = queries.len() as f64;
        table.row(vec![
            label,
            bytes(index_bytes),
            format!("{:.2}", coarse_ns as f64 / n / 1e6),
            format!("{:.2}", fine_ns as f64 / n / 1e6),
            format!("{:.2}", total.as_secs_f64() * 1e3 / n),
            format!("{:.3}", recall / n),
        ]);
    }
    table.print();
    println!(
        "\nRecord-granularity postings shrink the index several-fold and speed the\n\
         coarse stage (no offsets to decode), but push work into fine search: without\n\
         a diagonal to band around, every candidate costs a full alignment. The paper\n\
         family's conclusion — offset granularity pays for itself at query time —\n\
         falls out of the last two columns."
    );
}
