//! Shared harness utilities for the experiment binaries (E1–E8).
//!
//! Each `src/bin/eN_*.rs` binary regenerates one table/figure of the
//! reconstructed evaluation (see EXPERIMENTS.md); this crate holds the
//! pieces they share: deterministic workload construction, timing, and
//! plain-text table rendering.

#![warn(missing_docs)]

use std::collections::HashSet;
use std::time::{Duration, Instant};

use nucdb::{Database, DbConfig};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::DnaSeq;

/// Standard workload: a synthetic collection of roughly `total_bases`
/// bases with planted homolog families and a realistic dose of
/// low-complexity repeats (deterministic in `seed`).
pub fn collection(seed: u64, total_bases: usize) -> SyntheticCollection {
    let spec = CollectionSpec {
        repeat_prob: 0.25,
        repeat_families: 4,
        ..CollectionSpec::sized(seed, total_bases)
    };
    SyntheticCollection::generate(&spec)
}

/// Build a database over a collection.
pub fn database(coll: &SyntheticCollection, config: &DbConfig) -> Database {
    Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        config,
    )
}

/// One query per planted family: a mutated fragment of the family parent.
/// `frac` controls query length relative to the parent; `divergence` the
/// mutation load.
pub fn family_queries(
    coll: &SyntheticCollection,
    frac: f64,
    divergence: f64,
) -> Vec<(usize, DnaSeq)> {
    (0..coll.families.len())
        .map(|f| {
            (
                f,
                coll.query_for_family(f, frac, &MutationModel::standard(divergence)),
            )
        })
        .collect()
}

/// The planted relevant set for family `f`.
pub fn family_relevant(coll: &SyntheticCollection, f: usize) -> HashSet<u32> {
    coll.families[f].member_ids.iter().copied().collect()
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a byte count with thousands separators.
pub fn bytes(n: u64) -> String {
    group_thousands(n)
}

/// Insert `,` thousands separators.
pub fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A plain-text table that renders with aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", line.join("  "));
        };
        render(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            render(row);
        }
    }
}

/// The `latency_ns` block shared by the experiment JSON files: count,
/// mean, and p50/p90/p99/max of a latency histogram, in nanoseconds.
/// Percentiles are HDR-bucket upper bounds (≤ 1/16 relative error); see
/// DESIGN.md "Observability".
pub fn latency_block(latency: &nucdb_obs::HistogramSnapshot) -> json::Value {
    use json::Value;
    Value::Obj(vec![
        ("count", Value::Int(latency.count())),
        ("mean", Value::Num(latency.mean())),
        ("p50", Value::Int(latency.p50())),
        ("p90", Value::Int(latency.p90())),
        ("p99", Value::Int(latency.p99())),
        ("max", Value::Int(latency.max)),
    ])
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Path of a machine-readable output file in the repository's `results/`
/// directory (created on demand). Experiment binaries drop JSON here
/// alongside their printed tables.
pub fn results_path(file: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(file)
}

/// Minimal JSON rendering for the experiment outputs — the workspace
/// carries no serialisation dependency, and the outputs are small flat
/// tables, so a tiny writer with stable key order suffices.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value.
    pub enum Value {
        /// A float (non-finite values render as `null`).
        Num(f64),
        /// An unsigned integer.
        Int(u64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object; keys render in insertion order.
        Obj(Vec<(&'static str, Value)>),
    }

    impl Value {
        /// Render to a JSON string.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, 0);
            out
        }

        fn write(&self, out: &mut String, depth: usize) {
            match self {
                Value::Num(x) if x.is_finite() => {
                    let _ = write!(out, "{x}");
                }
                Value::Num(_) => out.push_str("null"),
                Value::Int(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            c if (c as u32) < 0x20 => {
                                let _ = write!(out, "\\u{:04x}", c as u32);
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Value::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth + 1));
                        item.write(out, depth + 1);
                    }
                    if !items.is_empty() {
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth));
                    }
                    out.push(']');
                }
                Value::Obj(fields) => {
                    out.push('{');
                    for (i, (key, value)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth + 1));
                        let _ = write!(out, "\"{key}\": ");
                        value.write(out, depth + 1);
                    }
                    if !fields.is_empty() {
                        out.push('\n');
                        out.push_str(&"  ".repeat(depth));
                    }
                    out.push('}');
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(1234567), "1,234,567");
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["only-one".into()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn json_renders_stably() {
        use super::json::Value;
        let v = Value::Obj(vec![
            ("name", Value::Str("a\"b".into())),
            ("n", Value::Int(3)),
            ("x", Value::Num(1.5)),
            ("bad", Value::Num(f64::NAN)),
            ("xs", Value::Arr(vec![Value::Int(1), Value::Int(2)])),
            ("empty", Value::Arr(vec![])),
        ]);
        let rendered = v.render();
        assert!(rendered.contains("\"name\": \"a\\\"b\""));
        assert!(rendered.contains("\"n\": 3"));
        assert!(rendered.contains("\"x\": 1.5"));
        assert!(rendered.contains("\"bad\": null"));
        assert!(rendered.contains("\"empty\": []"));
        // Balanced braces/brackets — structurally parseable.
        assert_eq!(rendered.matches('{').count(), rendered.matches('}').count());
        assert_eq!(rendered.matches('[').count(), rendered.matches(']').count());
    }

    #[test]
    fn workload_helpers_are_deterministic() {
        let a = collection(5, 100_000);
        let b = collection(5, 100_000);
        assert_eq!(a.records.len(), b.records.len());
        let qa = family_queries(&a, 0.5, 0.05);
        let qb = family_queries(&b, 0.5, 0.05);
        assert_eq!(qa.len(), qb.len());
        for ((fa, sa), (fb, sb)) in qa.iter().zip(&qb) {
            assert_eq!(fa, fb);
            assert_eq!(sa, sb);
        }
        assert!(!family_relevant(&a, 0).is_empty());
    }
}
