//! Shared harness utilities for the experiment binaries (E1–E8).
//!
//! Each `src/bin/eN_*.rs` binary regenerates one table/figure of the
//! reconstructed evaluation (see EXPERIMENTS.md); this crate holds the
//! pieces they share: deterministic workload construction, timing, and
//! plain-text table rendering.

#![warn(missing_docs)]

use std::collections::HashSet;
use std::time::{Duration, Instant};

use nucdb::{Database, DbConfig};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::DnaSeq;

/// Standard workload: a synthetic collection of roughly `total_bases`
/// bases with planted homolog families and a realistic dose of
/// low-complexity repeats (deterministic in `seed`).
pub fn collection(seed: u64, total_bases: usize) -> SyntheticCollection {
    let spec = CollectionSpec {
        repeat_prob: 0.25,
        repeat_families: 4,
        ..CollectionSpec::sized(seed, total_bases)
    };
    SyntheticCollection::generate(&spec)
}

/// Build a database over a collection.
pub fn database(coll: &SyntheticCollection, config: &DbConfig) -> Database {
    Database::build(coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())), config)
}

/// One query per planted family: a mutated fragment of the family parent.
/// `frac` controls query length relative to the parent; `divergence` the
/// mutation load.
pub fn family_queries(
    coll: &SyntheticCollection,
    frac: f64,
    divergence: f64,
) -> Vec<(usize, DnaSeq)> {
    (0..coll.families.len())
        .map(|f| (f, coll.query_for_family(f, frac, &MutationModel::standard(divergence))))
        .collect()
}

/// The planted relevant set for family `f`.
pub fn family_relevant(coll: &SyntheticCollection, f: usize) -> HashSet<u32> {
    coll.families[f].member_ids.iter().copied().collect()
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Format a byte count with thousands separators.
pub fn bytes(n: u64) -> String {
    group_thousands(n)
}

/// Insert `,` thousands separators.
pub fn group_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A plain-text table that renders with aligned columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()). collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", line.join("  "));
        };
        render(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            render(row);
        }
    }
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(1234567), "1,234,567");
    }

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(vec!["only-one".into()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn workload_helpers_are_deterministic() {
        let a = collection(5, 100_000);
        let b = collection(5, 100_000);
        assert_eq!(a.records.len(), b.records.len());
        let qa = family_queries(&a, 0.5, 0.05);
        let qb = family_queries(&b, 0.5, 0.05);
        assert_eq!(qa.len(), qb.len());
        for ((fa, sa), (fb, sb)) in qa.iter().zip(&qb) {
            assert_eq!(fa, fb);
            assert_eq!(sa, sb);
        }
        assert!(!family_relevant(&a, 0).is_empty());
    }
}
